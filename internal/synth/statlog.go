package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"cmpdt/internal/dataset"
)

// The STATLOG datasets of Table 1 are distributed by the UCI repository and
// are not shipped with this reproduction. Statlog generates deterministic
// synthetic stand-ins with the same record counts, attribute counts and
// class counts, built as Gaussian mixtures: each class has a centroid over a
// few informative attributes (so one attribute dominates the first split, as
// in the originals) and the remaining attributes are uninformative noise.
// Table 1 measures whether discretized split selection matches exact split
// selection — a property of histogram geometry, not of the particular UCI
// distributions — so the stand-ins exercise it the same way.

type statlogSpec struct {
	n           int
	attrs       int
	classes     int
	informative int
	sep         float64 // centroid separation in units of the class stddev
	skew        float64 // class-prior skew: weight(c) proportional to skew^c
}

var statlogSpecs = map[string]statlogSpec{
	"letter":   {n: 15000, attrs: 16, classes: 26, informative: 6, sep: 2.2, skew: 1},
	"satimage": {n: 4435, attrs: 36, classes: 6, informative: 8, sep: 3.0, skew: 1},
	"segment":  {n: 2310, attrs: 19, classes: 7, informative: 5, sep: 3.0, skew: 1},
	"shuttle":  {n: 43500, attrs: 9, classes: 7, informative: 3, sep: 4.0, skew: 0.45},
}

// StatlogNames lists the available stand-in datasets in a fixed order.
func StatlogNames() []string {
	names := make([]string, 0, len(statlogSpecs))
	for n := range statlogSpecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StatlogSize returns the record count of the named stand-in.
func StatlogSize(name string) (int, error) {
	spec, ok := statlogSpecs[name]
	if !ok {
		return 0, fmt.Errorf("synth: unknown STATLOG dataset %q", name)
	}
	return spec.n, nil
}

// Statlog generates the named stand-in dataset ("letter", "satimage",
// "segment" or "shuttle"), deterministically from seed.
func Statlog(name string, seed int64) (*dataset.Table, error) {
	spec, ok := statlogSpecs[name]
	if !ok {
		return nil, fmt.Errorf("synth: unknown STATLOG dataset %q (have %v)", name, StatlogNames())
	}
	schema := &dataset.Schema{
		Attrs:   make([]dataset.Attribute, spec.attrs),
		Classes: make([]string, spec.classes),
	}
	for i := range schema.Attrs {
		schema.Attrs[i] = dataset.Attribute{Name: fmt.Sprintf("a%d", i), Kind: dataset.Numeric}
	}
	for c := range schema.Classes {
		schema.Classes[c] = fmt.Sprintf("c%d", c)
	}
	t := dataset.MustNew(schema)

	rng := rand.New(rand.NewSource(seed))

	// Class centroids over the informative attributes.
	centroids := make([][]float64, spec.classes)
	for c := range centroids {
		centroids[c] = make([]float64, spec.informative)
		for j := range centroids[c] {
			centroids[c][j] = spec.sep * rng.NormFloat64()
		}
	}
	// Class priors, optionally skewed.
	weights := make([]float64, spec.classes)
	sum := 0.0
	w := 1.0
	for c := range weights {
		weights[c] = w
		sum += w
		if spec.skew != 1 {
			w *= spec.skew
		}
	}
	cum := make([]float64, spec.classes)
	run := 0.0
	for c := range weights {
		run += weights[c] / sum
		cum[c] = run
	}

	vals := make([]float64, spec.attrs)
	for i := 0; i < spec.n; i++ {
		u := rng.Float64()
		class := sort.SearchFloat64s(cum, u)
		if class >= spec.classes {
			class = spec.classes - 1
		}
		for j := 0; j < spec.informative; j++ {
			vals[j] = centroids[class][j] + rng.NormFloat64()
		}
		for j := spec.informative; j < spec.attrs; j++ {
			vals[j] = uniform(rng, 0, 100)
		}
		if err := t.Append(vals, class); err != nil {
			return nil, err
		}
	}
	return t, nil
}
