package histogram

import (
	"math/rand"
	"testing"
)

func BenchmarkHist1DAdd(b *testing.B) {
	h := New1D(100, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(i%100, i%2)
	}
}

func BenchmarkMatrixAdd(b *testing.B) {
	m := NewMatrix(100, 100, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Add(i%100, (i/7)%100, i%2)
	}
}

func BenchmarkMatrixMarginals(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(100, 100, 2)
	for i := 0; i < 100_000; i++ {
		m.Add(rng.Intn(100), rng.Intn(100), rng.Intn(2))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MarginalX()
		m.MarginalY()
	}
}

func BenchmarkMatrixSliceX(b *testing.B) {
	m := NewMatrix(100, 100, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.SliceX(20, 80)
	}
}

func BenchmarkCumulative(b *testing.B) {
	h := New1D(120, 2)
	for k := 0; k < 120; k++ {
		h.AddN(k, k%2, k+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Cumulative()
	}
}
