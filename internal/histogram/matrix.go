package histogram

import "fmt"

// Matrix is the bivariate class histogram of CMP-B: cell (i, j) holds the
// per-class counts of records whose X-attribute falls in interval i and
// whose Y-attribute falls in interval j (Figure 5 of the paper).
type Matrix struct {
	xbins, ybins, classes int
	counts                []int // x-major, then y, then class
}

// NewMatrix returns a zeroed matrix with the given shape.
func NewMatrix(xbins, ybins, classes int) *Matrix {
	if xbins <= 0 || ybins <= 0 || classes <= 0 {
		panic(fmt.Sprintf("histogram: bad matrix shape %dx%dx%d", xbins, ybins, classes))
	}
	return &Matrix{xbins: xbins, ybins: ybins, classes: classes,
		counts: make([]int, xbins*ybins*classes)}
}

// XBins returns the number of X intervals.
func (m *Matrix) XBins() int { return m.xbins }

// YBins returns the number of Y intervals.
func (m *Matrix) YBins() int { return m.ybins }

// Classes returns the number of classes.
func (m *Matrix) Classes() int { return m.classes }

// Add increments the count for (xbin, ybin, class).
func (m *Matrix) Add(xbin, ybin, class int) {
	m.counts[(xbin*m.ybins+ybin)*m.classes+class]++
}

// Cell returns a view of the per-class counts of cell (xbin, ybin). The
// slice aliases the matrix's storage.
func (m *Matrix) Cell(xbin, ybin int) []int {
	off := (xbin*m.ybins + ybin) * m.classes
	return m.counts[off : off+m.classes : off+m.classes]
}

// MarginalX collapses the Y axis, yielding the 1-D histogram of the X
// attribute ("summing up the histogram in all the intervals on attribute b").
func (m *Matrix) MarginalX() *Hist1D {
	h := New1D(m.xbins, m.classes)
	for x := 0; x < m.xbins; x++ {
		row := h.Bin(x)
		for y := 0; y < m.ybins; y++ {
			cell := m.Cell(x, y)
			for c, n := range cell {
				row[c] += n
			}
		}
	}
	return h
}

// MarginalY collapses the X axis, yielding the 1-D histogram of the Y
// attribute.
func (m *Matrix) MarginalY() *Hist1D {
	h := New1D(m.ybins, m.classes)
	for x := 0; x < m.xbins; x++ {
		for y := 0; y < m.ybins; y++ {
			cell := m.Cell(x, y)
			row := h.Bin(y)
			for c, n := range cell {
				row[c] += n
			}
		}
	}
	return h
}

// SliceX returns the sub-matrix of X intervals [lo, hi) — the shaded /
// unshaded halves of Figure 6 when a node splits on its X attribute.
func (m *Matrix) SliceX(lo, hi int) *Matrix {
	if lo < 0 || hi > m.xbins || lo >= hi {
		panic("histogram: bad X range")
	}
	out := NewMatrix(hi-lo, m.ybins, m.classes)
	copy(out.counts, m.counts[lo*m.ybins*m.classes:hi*m.ybins*m.classes])
	return out
}

// SliceY returns the sub-matrix of Y intervals [lo, hi).
func (m *Matrix) SliceY(lo, hi int) *Matrix {
	if lo < 0 || hi > m.ybins || lo >= hi {
		panic("histogram: bad Y range")
	}
	out := NewMatrix(m.xbins, hi-lo, m.classes)
	for x := 0; x < m.xbins; x++ {
		src := m.counts[(x*m.ybins+lo)*m.classes : (x*m.ybins+hi)*m.classes]
		dst := out.counts[x*out.ybins*m.classes : (x+1)*out.ybins*m.classes]
		copy(dst, src)
	}
	return out
}

// Merge adds other's counts into m. Shapes must match.
func (m *Matrix) Merge(other *Matrix) {
	if m.xbins != other.xbins || m.ybins != other.ybins || m.classes != other.classes {
		panic("histogram: matrix merge shape mismatch")
	}
	for i, n := range other.counts {
		m.counts[i] += n
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.xbins, m.ybins, m.classes)
	copy(c.counts, m.counts)
	return c
}

// Total returns the number of records counted.
func (m *Matrix) Total() int {
	n := 0
	for _, c := range m.counts {
		n += c
	}
	return n
}

// ClassTotals returns per-class counts over the whole matrix.
func (m *Matrix) ClassTotals() []int {
	t := make([]int, m.classes)
	for i, n := range m.counts {
		t[i%m.classes] += n
	}
	return t
}

// MemoryBytes estimates the in-memory footprint.
func (m *Matrix) MemoryBytes() int64 { return int64(len(m.counts)) * 8 }
