package histogram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHist1DBasics(t *testing.T) {
	h := New1D(4, 2)
	h.Add(0, 0)
	h.Add(0, 1)
	h.Add(3, 1)
	h.AddN(2, 0, 5)
	if got := h.Count(0, 0); got != 1 {
		t.Errorf("Count(0,0) = %d, want 1", got)
	}
	if got := h.Count(2, 0); got != 5 {
		t.Errorf("Count(2,0) = %d, want 5", got)
	}
	if got := h.Total(); got != 8 {
		t.Errorf("Total = %d, want 8", got)
	}
	if got := h.ClassTotals(); got[0] != 6 || got[1] != 2 {
		t.Errorf("ClassTotals = %v, want [6 2]", got)
	}
	if bin := h.Bin(0); bin[0] != 1 || bin[1] != 1 {
		t.Errorf("Bin(0) = %v, want [1 1]", bin)
	}
}

func TestHist1DCumulative(t *testing.T) {
	h := New1D(3, 2)
	h.AddN(0, 0, 2)
	h.AddN(1, 1, 3)
	h.AddN(2, 0, 1)
	cums := h.Cumulative()
	if len(cums) != 2 {
		t.Fatalf("len(Cumulative) = %d, want 2", len(cums))
	}
	if cums[0][0] != 2 || cums[0][1] != 0 {
		t.Errorf("cum[0] = %v, want [2 0]", cums[0])
	}
	if cums[1][0] != 2 || cums[1][1] != 3 {
		t.Errorf("cum[1] = %v, want [2 3]", cums[1])
	}
}

func TestHist1DMergeAndClone(t *testing.T) {
	a := New1D(3, 2)
	b := New1D(3, 2)
	a.AddN(1, 0, 4)
	b.AddN(1, 0, 2)
	b.AddN(2, 1, 7)
	c := a.Clone()
	c.Merge(b)
	if a.Count(1, 0) != 4 {
		t.Error("Merge mutated the clone source")
	}
	if c.Count(1, 0) != 6 || c.Count(2, 1) != 7 {
		t.Errorf("merged counts wrong: %v %v", c.Count(1, 0), c.Count(2, 1))
	}
}

func TestHist1DSliceBins(t *testing.T) {
	h := New1D(5, 2)
	for k := 0; k < 5; k++ {
		h.AddN(k, 0, k+1)
	}
	s := h.SliceBins(1, 4)
	if s.Bins() != 3 {
		t.Fatalf("sliced bins = %d, want 3", s.Bins())
	}
	for k := 0; k < 3; k++ {
		if s.Count(k, 0) != k+2 {
			t.Errorf("sliced bin %d = %d, want %d", k, s.Count(k, 0), k+2)
		}
	}
}

func TestMatrixMarginalsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(4, 3, 2)
		for i := 0; i < 200; i++ {
			m.Add(rng.Intn(4), rng.Intn(3), rng.Intn(2))
		}
		mx, my := m.MarginalX(), m.MarginalY()
		if mx.Total() != m.Total() || my.Total() != m.Total() {
			return false
		}
		tx, ty, tm := mx.ClassTotals(), my.ClassTotals(), m.ClassTotals()
		for c := range tm {
			if tx[c] != tm[c] || ty[c] != tm[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatrixSliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMatrix(6, 5, 3)
	for i := 0; i < 500; i++ {
		m.Add(rng.Intn(6), rng.Intn(5), rng.Intn(3))
	}
	// SliceX halves merged back must reproduce the original counts.
	left, right := m.SliceX(0, 3), m.SliceX(3, 6)
	if left.Total()+right.Total() != m.Total() {
		t.Fatalf("slice totals %d+%d != %d", left.Total(), right.Total(), m.Total())
	}
	for x := 0; x < 6; x++ {
		for y := 0; y < 5; y++ {
			var got []int
			if x < 3 {
				got = left.Cell(x, y)
			} else {
				got = right.Cell(x-3, y)
			}
			want := m.Cell(x, y)
			for c := range want {
				if got[c] != want[c] {
					t.Fatalf("cell (%d,%d) class %d: got %d want %d", x, y, c, got[c], want[c])
				}
			}
		}
	}
	// Same along Y.
	top, bottom := m.SliceY(0, 2), m.SliceY(2, 5)
	if top.Total()+bottom.Total() != m.Total() {
		t.Fatalf("Y slice totals %d+%d != %d", top.Total(), bottom.Total(), m.Total())
	}
}

func TestMatrixMergeMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := NewMatrix(3, 3, 2)
	b := NewMatrix(3, 3, 2)
	union := NewMatrix(3, 3, 2)
	for i := 0; i < 300; i++ {
		x, y, c := rng.Intn(3), rng.Intn(3), rng.Intn(2)
		if i%2 == 0 {
			a.Add(x, y, c)
		} else {
			b.Add(x, y, c)
		}
		union.Add(x, y, c)
	}
	a.Merge(b)
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			ga, gu := a.Cell(x, y), union.Cell(x, y)
			for c := range gu {
				if ga[c] != gu[c] {
					t.Fatalf("merged cell (%d,%d) class %d: %d != %d", x, y, c, ga[c], gu[c])
				}
			}
		}
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	a := New1D(3, 2)
	b := New1D(4, 2)
	a.Merge(b)
}

func TestMatrixSliceBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad slice range")
		}
	}()
	NewMatrix(3, 3, 2).SliceX(2, 2)
}
