// Package histogram provides the class-count structures CMP is built on:
// one-dimensional interval histograms (CMP-S, CLOUDS) and two-dimensional
// histogram matrices over attribute pairs (CMP-B, CMP).
package histogram

import "fmt"

// Hist1D counts records per (interval, class).
type Hist1D struct {
	bins, classes int
	counts        []int // bins * classes, bin-major
}

// New1D returns a zeroed histogram with the given shape.
func New1D(bins, classes int) *Hist1D {
	if bins <= 0 || classes <= 0 {
		panic(fmt.Sprintf("histogram: bad shape %dx%d", bins, classes))
	}
	return &Hist1D{bins: bins, classes: classes, counts: make([]int, bins*classes)}
}

// Bins returns the number of intervals.
func (h *Hist1D) Bins() int { return h.bins }

// Classes returns the number of classes.
func (h *Hist1D) Classes() int { return h.classes }

// Add increments the count for (bin, class).
func (h *Hist1D) Add(bin, class int) { h.counts[bin*h.classes+class]++ }

// AddN adds n to the count for (bin, class).
func (h *Hist1D) AddN(bin, class, n int) { h.counts[bin*h.classes+class] += n }

// Count returns the count for (bin, class).
func (h *Hist1D) Count(bin, class int) int { return h.counts[bin*h.classes+class] }

// Bin returns a view of one bin's per-class counts. The slice aliases the
// histogram's storage.
func (h *Hist1D) Bin(bin int) []int {
	return h.counts[bin*h.classes : (bin+1)*h.classes : (bin+1)*h.classes]
}

// ClassTotals returns the per-class counts summed over all bins.
func (h *Hist1D) ClassTotals() []int {
	t := make([]int, h.classes)
	for b := 0; b < h.bins; b++ {
		row := h.Bin(b)
		for c, n := range row {
			t[c] += n
		}
	}
	return t
}

// Total returns the number of records counted.
func (h *Hist1D) Total() int {
	n := 0
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Cumulative returns, for each boundary b in [0, Bins()-1), the per-class
// counts of records in bins 0..b — the x_i / y_i vectors of the paper's
// estimation formulas. The rows alias one backing array; treat as read-only.
func (h *Hist1D) Cumulative() [][]int {
	if h.bins < 2 {
		return nil
	}
	backing := make([]int, (h.bins-1)*h.classes)
	out := make([][]int, h.bins-1)
	run := make([]int, h.classes)
	for b := 0; b < h.bins-1; b++ {
		row := h.Bin(b)
		for c, n := range row {
			run[c] += n
		}
		dst := backing[b*h.classes : (b+1)*h.classes]
		copy(dst, run)
		out[b] = dst
	}
	return out
}

// Merge adds other's counts into h. Shapes must match.
func (h *Hist1D) Merge(other *Hist1D) {
	if h.bins != other.bins || h.classes != other.classes {
		panic("histogram: merge shape mismatch")
	}
	for i, n := range other.counts {
		h.counts[i] += n
	}
}

// Clone returns a deep copy.
func (h *Hist1D) Clone() *Hist1D {
	c := New1D(h.bins, h.classes)
	copy(c.counts, h.counts)
	return c
}

// SliceBins returns a new histogram holding only bins [lo, hi).
func (h *Hist1D) SliceBins(lo, hi int) *Hist1D {
	if lo < 0 || hi > h.bins || lo >= hi {
		panic("histogram: bad bin range")
	}
	out := New1D(hi-lo, h.classes)
	copy(out.counts, h.counts[lo*h.classes:hi*h.classes])
	return out
}

// MemoryBytes estimates the in-memory footprint, used by the experiment
// harness's memory accounting.
func (h *Hist1D) MemoryBytes() int64 { return int64(len(h.counts)) * 8 }
