package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the table as CSV: a header row with attribute names plus
// "class", then one row per record. Categorical values and class labels are
// written symbolically.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, t.schema.NumAttrs()+1)
	for i := range t.schema.Attrs {
		header = append(header, t.schema.Attrs[i].Name)
	}
	header = append(header, "class")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < t.NumRecords(); i++ {
		vals := t.Row(i)
		for j, v := range vals {
			a := &t.schema.Attrs[j]
			if a.Kind == Categorical {
				row[j] = a.Values[int(v)]
			} else {
				row[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		row[len(row)-1] = t.schema.Classes[t.Label(i)]
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV stream written by WriteCSV (or hand-authored in the
// same shape) against the given schema. The header row is validated.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	t, err := New(schema)
	if err != nil {
		return nil, err
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.NumAttrs() + 1

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	for i := range schema.Attrs {
		if header[i] != schema.Attrs[i].Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q",
				i, header[i], schema.Attrs[i].Name)
		}
	}
	if last := header[len(header)-1]; last != "class" {
		return nil, fmt.Errorf("dataset: CSV last column is %q, expected \"class\"", last)
	}

	classIdx := make(map[string]int, schema.NumClasses())
	for i, c := range schema.Classes {
		classIdx[c] = i
	}
	catIdx := make([]map[string]int, schema.NumAttrs())
	for i := range schema.Attrs {
		if schema.Attrs[i].Kind == Categorical {
			m := make(map[string]int, len(schema.Attrs[i].Values))
			for j, v := range schema.Attrs[i].Values {
				m[v] = j
			}
			catIdx[i] = m
		}
	}

	vals := make([]float64, schema.NumAttrs())
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		for j := 0; j < schema.NumAttrs(); j++ {
			if m := catIdx[j]; m != nil {
				idx, ok := m[rec[j]]
				if !ok {
					return nil, fmt.Errorf("dataset: line %d: unknown category %q for attribute %q",
						line, rec[j], schema.Attrs[j].Name)
				}
				vals[j] = float64(idx)
				continue
			}
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d attribute %q: %w", line, schema.Attrs[j].Name, err)
			}
			vals[j] = v
		}
		label, ok := classIdx[rec[len(rec)-1]]
		if !ok {
			return nil, fmt.Errorf("dataset: line %d: unknown class %q", line, rec[len(rec)-1])
		}
		if err := t.Append(vals, label); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	return t, nil
}
