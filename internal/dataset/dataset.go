// Package dataset defines the tabular data model shared by every classifier
// in this repository: schemas, records, and in-memory tables.
//
// Attribute values are stored uniformly as float64. Categorical attributes
// hold the index of their value in Attribute.Values, converted to float64;
// this keeps record layout flat and scan loops branch-free. Class labels are
// small ints indexing Schema.Classes.
package dataset

import (
	"errors"
	"fmt"
	"math"
)

// Kind distinguishes ordered (numeric) attributes from categorical ones.
type Kind int

const (
	// Numeric attributes have a totally ordered domain and are split with
	// threshold predicates (value <= c).
	Numeric Kind = iota
	// Categorical attributes have an unordered finite domain and are split
	// with subset predicates (value in S).
	Categorical
)

// String returns "numeric" or "categorical".
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one column of a dataset.
type Attribute struct {
	Name string
	Kind Kind
	// Values enumerates the domain of a categorical attribute. A record
	// stores float64(i) where i indexes this slice. Empty for numeric
	// attributes.
	Values []string
}

// Cardinality returns the number of distinct values of a categorical
// attribute, or 0 for a numeric one.
func (a *Attribute) Cardinality() int {
	if a.Kind != Categorical {
		return 0
	}
	return len(a.Values)
}

// Schema describes the columns of a dataset and its class labels. The class
// label is kept out of the attribute list, mirroring the paper's convention
// that a dataset with N attributes has N predictive columns plus one
// distinguished class column.
type Schema struct {
	Attrs   []Attribute
	Classes []string
}

// NumAttrs returns the number of predictive attributes.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// NumClasses returns the number of class labels.
func (s *Schema) NumClasses() int { return len(s.Classes) }

// NumericAttrs returns the indices of the numeric attributes, in schema
// order — the set the discretizing builders quantize and split by threshold.
func (s *Schema) NumericAttrs() []int {
	var out []int
	for i := range s.Attrs {
		if s.Attrs[i].Kind == Numeric {
			out = append(out, i)
		}
	}
	return out
}

// AttrIndex returns the index of the attribute with the given name, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i := range s.Attrs {
		if s.Attrs[i].Name == name {
			return i
		}
	}
	return -1
}

// Validate reports an error for malformed schemas: no attributes, fewer than
// two classes, duplicate column names, or categorical attributes without an
// enumerated domain.
func (s *Schema) Validate() error {
	if len(s.Attrs) == 0 {
		return errors.New("dataset: schema has no attributes")
	}
	if len(s.Classes) < 2 {
		return fmt.Errorf("dataset: schema needs >= 2 classes, got %d", len(s.Classes))
	}
	seen := make(map[string]bool, len(s.Attrs))
	for i := range s.Attrs {
		a := &s.Attrs[i]
		if a.Name == "" {
			return fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Kind == Categorical && len(a.Values) == 0 {
			return fmt.Errorf("dataset: categorical attribute %q has no values", a.Name)
		}
	}
	return nil
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		Attrs:   make([]Attribute, len(s.Attrs)),
		Classes: append([]string(nil), s.Classes...),
	}
	for i := range s.Attrs {
		c.Attrs[i] = s.Attrs[i]
		c.Attrs[i].Values = append([]string(nil), s.Attrs[i].Values...)
	}
	return c
}

// Table is an in-memory dataset: a flat row-major value matrix plus labels.
// The zero value is an empty table with a nil schema; use New.
type Table struct {
	schema *Schema
	values []float64 // row-major, len == n*NumAttrs
	labels []int32
}

// New returns an empty table with the given schema. The schema must be valid.
func New(schema *Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &Table{schema: schema}, nil
}

// MustNew is New for statically known-good schemas; it panics on error.
func MustNew(schema *Schema) *Table {
	t, err := New(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRecords returns the number of rows.
func (t *Table) NumRecords() int { return len(t.labels) }

// Append adds one record. vals must have exactly one entry per attribute and
// label must index Schema.Classes. Categorical values must be integral and in
// range; numeric values must not be NaN.
func (t *Table) Append(vals []float64, label int) error {
	k := t.schema.NumAttrs()
	if len(vals) != k {
		return fmt.Errorf("dataset: record has %d values, schema has %d attributes", len(vals), k)
	}
	if label < 0 || label >= t.schema.NumClasses() {
		return fmt.Errorf("dataset: label %d out of range [0,%d)", label, t.schema.NumClasses())
	}
	for i, v := range vals {
		a := &t.schema.Attrs[i]
		if math.IsNaN(v) {
			return fmt.Errorf("dataset: attribute %q is NaN", a.Name)
		}
		if a.Kind == Categorical {
			if v != math.Trunc(v) || v < 0 || int(v) >= len(a.Values) {
				return fmt.Errorf("dataset: attribute %q value %v not a valid category index", a.Name, v)
			}
		}
	}
	t.values = append(t.values, vals...)
	t.labels = append(t.labels, int32(label))
	return nil
}

// Row returns a view of record i's attribute values. The slice aliases the
// table's storage; callers must not modify or retain it across appends.
func (t *Table) Row(i int) []float64 {
	k := t.schema.NumAttrs()
	return t.values[i*k : i*k+k : i*k+k]
}

// RecordInto copies record i's attribute values into dst and returns it,
// growing dst only if its capacity is insufficient. Unlike Row, the result
// does not alias the table's storage, so callers that buffer records across
// appends (or hand them to other goroutines alongside table mutation) can
// reuse one buffer with no per-record allocation.
func (t *Table) RecordInto(dst []float64, i int) []float64 {
	k := t.schema.NumAttrs()
	if cap(dst) < k {
		dst = make([]float64, k)
	}
	dst = dst[:k]
	copy(dst, t.values[i*k:i*k+k])
	return dst
}

// Value returns attribute a of record i.
func (t *Table) Value(i, a int) float64 {
	return t.values[i*t.schema.NumAttrs()+a]
}

// Label returns the class label of record i.
func (t *Table) Label(i int) int { return int(t.labels[i]) }

// ClassCounts returns the per-class record counts.
func (t *Table) ClassCounts() []int {
	counts := make([]int, t.schema.NumClasses())
	for _, l := range t.labels {
		counts[l]++
	}
	return counts
}

// Column copies attribute a of every record into a new slice.
func (t *Table) Column(a int) []float64 {
	n := t.NumRecords()
	out := make([]float64, n)
	k := t.schema.NumAttrs()
	for i := 0; i < n; i++ {
		out[i] = t.values[i*k+a]
	}
	return out
}

// Slice returns a new table containing the rows whose indices are listed in
// idx, in order. Rows are copied.
func (t *Table) Slice(idx []int) *Table {
	out := MustNew(t.schema)
	for _, i := range idx {
		out.values = append(out.values, t.Row(i)...)
		out.labels = append(out.labels, t.labels[i])
	}
	return out
}

// Split partitions the table's rows into two new tables by predicate.
func (t *Table) Split(pred func(row []float64, label int) bool) (yes, no *Table) {
	yes, no = MustNew(t.schema), MustNew(t.schema)
	for i := 0; i < t.NumRecords(); i++ {
		row := t.Row(i)
		dst := no
		if pred(row, t.Label(i)) {
			dst = yes
		}
		dst.values = append(dst.values, row...)
		dst.labels = append(dst.labels, t.labels[i])
	}
	return yes, no
}
