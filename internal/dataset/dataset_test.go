package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func testSchema() *Schema {
	return &Schema{
		Attrs: []Attribute{
			{Name: "x", Kind: Numeric},
			{Name: "color", Kind: Categorical, Values: []string{"red", "green", "blue"}},
		},
		Classes: []string{"no", "yes"},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := testSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := []*Schema{
		{Classes: []string{"a", "b"}},
		{Attrs: []Attribute{{Name: "x"}}, Classes: []string{"only"}},
		{Attrs: []Attribute{{Name: ""}}, Classes: []string{"a", "b"}},
		{Attrs: []Attribute{{Name: "x"}, {Name: "x"}}, Classes: []string{"a", "b"}},
		{Attrs: []Attribute{{Name: "c", Kind: Categorical}}, Classes: []string{"a", "b"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestSchemaClone(t *testing.T) {
	s := testSchema()
	c := s.Clone()
	c.Attrs[1].Values[0] = "mutated"
	c.Classes[0] = "mutated"
	if s.Attrs[1].Values[0] != "red" || s.Classes[0] != "no" {
		t.Error("Clone shares backing arrays")
	}
	if s.AttrIndex("color") != 1 || s.AttrIndex("missing") != -1 {
		t.Error("AttrIndex wrong")
	}
}

func TestTableAppendValidation(t *testing.T) {
	tbl := MustNew(testSchema())
	if err := tbl.Append([]float64{1.5, 2}, 1); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := []struct {
		vals  []float64
		label int
	}{
		{[]float64{1}, 0},             // wrong arity
		{[]float64{1, 2, 3}, 0},       // wrong arity
		{[]float64{1, 2}, 2},          // label out of range
		{[]float64{1, 2}, -1},         // label out of range
		{[]float64{1, 3}, 0},          // category index out of range
		{[]float64{1, 0.5}, 0},        // non-integral category
		{[]float64{math.NaN(), 0}, 0}, // NaN
	}
	for i, c := range cases {
		if err := tbl.Append(c.vals, c.label); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
	if tbl.NumRecords() != 1 {
		t.Errorf("NumRecords = %d, want 1", tbl.NumRecords())
	}
}

func TestTableAccessors(t *testing.T) {
	tbl := MustNew(testSchema())
	tbl.Append([]float64{1, 0}, 0)
	tbl.Append([]float64{2, 1}, 1)
	tbl.Append([]float64{3, 2}, 1)
	if got := tbl.Value(1, 0); got != 2 {
		t.Errorf("Value(1,0) = %v", got)
	}
	if got := tbl.Label(2); got != 1 {
		t.Errorf("Label(2) = %v", got)
	}
	if got := tbl.ClassCounts(); got[0] != 1 || got[1] != 2 {
		t.Errorf("ClassCounts = %v", got)
	}
	if col := tbl.Column(0); len(col) != 3 || col[2] != 3 {
		t.Errorf("Column(0) = %v", col)
	}
	if row := tbl.Row(1); row[0] != 2 || row[1] != 1 {
		t.Errorf("Row(1) = %v", row)
	}
}

func TestRecordInto(t *testing.T) {
	tbl := MustNew(testSchema())
	tbl.Append([]float64{1, 0}, 0)
	tbl.Append([]float64{2, 1}, 1)

	// Nil destination allocates; a roomy one is reused and resliced.
	got := tbl.RecordInto(nil, 1)
	if got[0] != 2 || got[1] != 1 {
		t.Errorf("RecordInto(nil, 1) = %v", got)
	}
	buf := make([]float64, 0, 8)
	out := tbl.RecordInto(buf, 0)
	if &out[0] != &buf[:1][0] {
		t.Error("RecordInto did not reuse the provided buffer")
	}
	if len(out) != 2 || out[0] != 1 || out[1] != 0 {
		t.Errorf("RecordInto(buf, 0) = %v", out)
	}
	// Unlike Row, the copy must not alias table storage.
	out[0] = 99
	if tbl.Value(0, 0) != 1 {
		t.Error("RecordInto aliases table storage")
	}
}

func TestTableSliceAndSplit(t *testing.T) {
	tbl := MustNew(testSchema())
	for i := 0; i < 10; i++ {
		tbl.Append([]float64{float64(i), float64(i % 3)}, i%2)
	}
	s := tbl.Slice([]int{9, 0, 5})
	if s.NumRecords() != 3 || s.Value(0, 0) != 9 || s.Value(2, 0) != 5 {
		t.Errorf("Slice wrong: n=%d first=%v", s.NumRecords(), s.Value(0, 0))
	}
	yes, no := tbl.Split(func(row []float64, label int) bool { return row[0] >= 5 })
	if yes.NumRecords() != 5 || no.NumRecords() != 5 {
		t.Errorf("Split sizes %d/%d, want 5/5", yes.NumRecords(), no.NumRecords())
	}
	for i := 0; i < yes.NumRecords(); i++ {
		if yes.Value(i, 0) < 5 {
			t.Errorf("record %v on wrong side", yes.Value(i, 0))
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := MustNew(testSchema())
	tbl.Append([]float64{1.25, 0}, 0)
	tbl.Append([]float64{-3, 2}, 1)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != 2 {
		t.Fatalf("round trip lost records: %d", back.NumRecords())
	}
	for i := 0; i < 2; i++ {
		if back.Label(i) != tbl.Label(i) {
			t.Errorf("label %d mismatch", i)
		}
		for a := 0; a < 2; a++ {
			if back.Value(i, a) != tbl.Value(i, a) {
				t.Errorf("value (%d,%d): %v != %v", i, a, back.Value(i, a), tbl.Value(i, a))
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	schema := testSchema()
	cases := []string{
		"wrong,color,class\n1,red,no\n",      // bad header
		"x,color,klass\n1,red,no\n",          // bad class header
		"x,color,class\n1,purple,no\n",       // unknown category
		"x,color,class\n1,red,maybe\n",       // unknown class
		"x,color,class\nnotanumber,red,no\n", // bad numeric
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), schema); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTrainTestSplitDeterministic(t *testing.T) {
	tbl := MustNew(testSchema())
	for i := 0; i < 100; i++ {
		tbl.Append([]float64{float64(i), 0}, i%2)
	}
	a1, b1 := TrainTestSplit(tbl, 0.7, 42)
	a2, _ := TrainTestSplit(tbl, 0.7, 42)
	if a1.NumRecords() != 70 || b1.NumRecords() != 30 {
		t.Fatalf("split sizes %d/%d", a1.NumRecords(), b1.NumRecords())
	}
	for i := 0; i < a1.NumRecords(); i++ {
		if a1.Value(i, 0) != a2.Value(i, 0) {
			t.Fatal("same seed produced different splits")
		}
	}
	_, diff := TrainTestSplit(tbl, 0.7, 43)
	same := true
	for i := 0; i < b1.NumRecords(); i++ {
		if b1.Value(i, 0) != diff.Value(i, 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical splits")
	}
	// Clamping.
	all, none := TrainTestSplit(tbl, 1.5, 1)
	if all.NumRecords() != 100 || none.NumRecords() != 0 {
		t.Error("trainFrac > 1 not clamped")
	}
}

func TestShuffleKeepsRecords(t *testing.T) {
	tbl := MustNew(testSchema())
	for i := 0; i < 50; i++ {
		tbl.Append([]float64{float64(i), 0}, 0)
	}
	sh := Shuffle(tbl, 5)
	if sh.NumRecords() != 50 {
		t.Fatal("shuffle changed size")
	}
	seen := make(map[float64]bool)
	for i := 0; i < 50; i++ {
		seen[sh.Value(i, 0)] = true
	}
	if len(seen) != 50 {
		t.Error("shuffle lost records")
	}
}

func TestStratifiedSplitPreservesProportions(t *testing.T) {
	tbl := MustNew(testSchema())
	// Heavily skewed: 900 of class 0, 100 of class 1.
	for i := 0; i < 1000; i++ {
		label := 0
		if i < 100 {
			label = 1
		}
		tbl.Append([]float64{float64(i), 0}, label)
	}
	train, test := StratifiedSplit(tbl, 0.8, 7)
	if train.NumRecords() != 800 || test.NumRecords() != 200 {
		t.Fatalf("split sizes %d/%d", train.NumRecords(), test.NumRecords())
	}
	tc := train.ClassCounts()
	ec := test.ClassCounts()
	if tc[1] != 80 || ec[1] != 20 {
		t.Errorf("rare class split %d/%d, want 80/20", tc[1], ec[1])
	}
	// Determinism.
	train2, _ := StratifiedSplit(tbl, 0.8, 7)
	for i := 0; i < train.NumRecords(); i++ {
		if train.Value(i, 0) != train2.Value(i, 0) {
			t.Fatal("same seed produced different stratified splits")
		}
	}
}
