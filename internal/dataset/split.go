package dataset

import "math/rand"

// TrainTestSplit shuffles the table's row order with the given seed and
// returns two new tables holding approximately trainFrac and 1-trainFrac of
// the records. trainFrac is clamped to [0,1].
func TrainTestSplit(t *Table, trainFrac float64, seed int64) (train, test *Table) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	n := t.NumRecords()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	cut := int(float64(n) * trainFrac)
	return t.Slice(perm[:cut]), t.Slice(perm[cut:])
}

// Shuffle returns a new table with rows permuted deterministically by seed.
func Shuffle(t *Table, seed int64) *Table {
	return t.Slice(rand.New(rand.NewSource(seed)).Perm(t.NumRecords()))
}

// StratifiedSplit partitions the table into train and test subsets while
// preserving each class's proportion in both parts — important for skewed
// class distributions, where a plain shuffle can starve the test set of the
// rare class.
func StratifiedSplit(t *Table, trainFrac float64, seed int64) (train, test *Table) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	byClass := make([][]int, t.Schema().NumClasses())
	for i := 0; i < t.NumRecords(); i++ {
		c := t.Label(i)
		byClass[c] = append(byClass[c], i)
	}
	rng := rand.New(rand.NewSource(seed))
	var trainIdx, testIdx []int
	for _, idx := range byClass {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		cut := int(float64(len(idx)) * trainFrac)
		trainIdx = append(trainIdx, idx[:cut]...)
		testIdx = append(testIdx, idx[cut:]...)
	}
	// Shuffle across classes so the output ordering carries no class signal.
	rng.Shuffle(len(trainIdx), func(i, j int) { trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i] })
	rng.Shuffle(len(testIdx), func(i, j int) { testIdx[i], testIdx[j] = testIdx[j], testIdx[i] })
	return t.Slice(trainIdx), t.Slice(testIdx)
}
