package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"cmpdt/internal/stream"
	"cmpdt/internal/synth"
)

// StreamResult is the online-training baseline BENCH_stream.json records:
// ingest throughput of the Hoeffding builder across worker counts, the
// snapshot compile cost, convergence latency, and the differential check
// that worker count does not change the trained tree.
type StreamResult struct {
	Workload   string `json:"workload"`
	Records    int    `json:"records"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// RecordsToFirstSplit is the 1-based record index of the first
	// committed split: the builder's convergence latency.
	RecordsToFirstSplit int64 `json:"records_to_first_split"`
	// SplitsCommitted is the final tree's split count.
	SplitsCommitted int64 `json:"splits_committed"`
	// SnapshotCompileNs is the wall time of compiling the final tree into
	// the serialized model form (one mid-stream publication's CPU cost).
	SnapshotCompileNs int64 `json:"snapshot_compile_ns"`
	// SnapshotsIdentical is true when the builds at workers {1, 2, 8}
	// serialize to byte-identical models.
	SnapshotsIdentical bool `json:"snapshots_identical"`
	// Rows reuses the shared benchmark row shape so benchdiff gates this
	// file with the same key scheme as the other baselines. Set is
	// "stream"; Mode is "ingest" (full-stream wall time over record count,
	// at workers {1, 2, 8}) or "compile" (snapshot compile + encode, per
	// record). SpeedupVsPointer holds serial-ingest-over-this, so the
	// workers=1 ingest row reads 1.0.
	Rows []InferRow `json:"rows"`
}

// StreamBench measures the online builder end to end: a Function-2 stream
// of o.N records is ingested at workers {1, 2, 8} (fresh builder each time,
// identical arrival order), then the final snapshot is compiled and
// serialized. Allocations are not metered per mode — ingestion retains
// state by design (sketches, histograms), so a per-record alloc gate would
// only race the tree's growth schedule; the rows report 0.
func (o Opts) StreamBench() (*StreamResult, error) {
	n := o.N
	tbl := synth.Generate(synth.F2, n, o.Seed)
	out := &StreamResult{
		Workload:   synth.F2.String(),
		Records:    n,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// Each configuration ingests the full stream ingestReps times through a
	// fresh builder and keeps the fastest run: a single 0.1s window is too
	// noisy for a 25% CI gate, the minimum is stable.
	const ingestReps = 3
	var serialNs float64
	var snaps [][]byte
	var last *stream.Builder
	for _, workers := range []int{1, 2, 8} {
		ns := 0.0
		for rep := 0; rep < ingestReps; rep++ {
			b, err := stream.New(stream.Config{Schema: synth.Schema(), Workers: workers})
			if err != nil {
				return nil, err
			}
			ctx := context.Background()
			start := time.Now()
			for i := 0; i < n; i++ {
				if err := b.Ingest(ctx, tbl.Row(i), tbl.Label(i)); err != nil {
					return nil, fmt.Errorf("experiments: stream ingest workers=%d: %w", workers, err)
				}
			}
			if err := b.Flush(ctx); err != nil {
				return nil, err
			}
			if v := float64(time.Since(start).Nanoseconds()) / float64(n); rep == 0 || v < ns {
				ns = v
			}
			if rep == ingestReps-1 {
				var buf bytes.Buffer
				if err := b.Snapshot().WriteJSON(&buf); err != nil {
					return nil, err
				}
				snaps = append(snaps, buf.Bytes())
				last = b
			}
		}
		if workers == 1 {
			serialNs = ns
		}
		out.Rows = append(out.Rows, InferRow{
			Set:              "stream",
			Mode:             "ingest",
			Workers:          workers,
			NsPerRecord:      ns,
			MRecordsPerSec:   1e3 / ns,
			SpeedupVsPointer: serialNs / ns,
		})
	}

	out.SnapshotsIdentical = true
	for _, s := range snaps[1:] {
		if !bytes.Equal(s, snaps[0]) {
			out.SnapshotsIdentical = false
		}
	}
	st := last.Stats()
	out.RecordsToFirstSplit = st.FirstSplitAt
	out.SplitsCommitted = st.Splits

	// Snapshot compile cost: compile + serialize the final tree repeatedly
	// and keep the fastest run (same noise argument as ingest).
	const compileReps = 32
	var compileNs int64
	for i := 0; i < compileReps; i++ {
		var buf bytes.Buffer
		start := time.Now()
		if err := last.Snapshot().WriteJSON(&buf); err != nil {
			return nil, err
		}
		if v := time.Since(start).Nanoseconds(); i == 0 || v < compileNs {
			compileNs = v
		}
	}
	out.SnapshotCompileNs = compileNs
	compilePerRecord := float64(out.SnapshotCompileNs) / float64(n)
	out.Rows = append(out.Rows, InferRow{
		Set:              "stream",
		Mode:             "compile",
		Workers:          1,
		NsPerRecord:      compilePerRecord,
		MRecordsPerSec:   1e3 / compilePerRecord,
		SpeedupVsPointer: 1,
	})
	return out, nil
}

// PrintStreamBench renders the result as an aligned table.
func PrintStreamBench(w io.Writer, r *StreamResult) {
	fmt.Fprintf(w, "workload %s, %d records, GOMAXPROCS %d\n",
		r.Workload, r.Records, r.GOMAXPROCS)
	fmt.Fprintf(w, "snapshots identical across workers: %v, first split at record %d, %d splits, compile %.2fms\n",
		r.SnapshotsIdentical, r.RecordsToFirstSplit, r.SplitsCommitted,
		float64(r.SnapshotCompileNs)/1e6)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tworkers\tns/record\tMrec/s\tspeedup vs serial")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.2f\t%.2fx\n",
			row.Mode, row.Workers, row.NsPerRecord, row.MRecordsPerSec, row.SpeedupVsPointer)
	}
	tw.Flush()
}

// WriteStreamJSON writes the machine-readable baseline consumed by
// make bench-stream (BENCH_stream.json).
func WriteStreamJSON(w io.Writer, r *StreamResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
