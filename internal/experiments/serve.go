package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"cmpdt"
	"cmpdt/internal/dataset"
	"cmpdt/internal/serve"
	"cmpdt/internal/synth"
)

// ServeLatencyRow is one closed-loop load point against the serving stack:
// a fixed number of concurrent clients hammering POST /predict through the
// full handler path (JSON decode, admission, coalescing, scoring, JSON
// encode) with no network in between, so the numbers isolate the serving
// pipeline itself. Percentiles are exact (nearest-rank over every request
// in the window), unlike the bucketed /metrics histograms.
type ServeLatencyRow struct {
	Clients int     `json:"clients"`
	QPS     float64 `json:"qps"`
	P50Ns   int64   `json:"p50_ns"`
	P99Ns   int64   `json:"p99_ns"`
}

// ServeOverload reports the load-shedding point: requests offered at about
// twice the configured service rate against a deliberately small queue.
// ShedRate is the fraction answered 429; Served+Shed counts every request.
type ServeOverload struct {
	OfferedQPS   float64 `json:"offered_qps"`
	ServedQPS    float64 `json:"served_qps"`
	ShedRate     float64 `json:"shed_rate"`
	Served       int     `json:"served"`
	Shed         int     `json:"shed"`
	QueueDepth   int     `json:"queue_depth"`
	ScoreDelayNs int64   `json:"score_delay_ns"`
}

// ServeResult is the serving benchmark baseline BENCH_serve.json records.
// Rows (set "serve") feed the benchdiff CI gate; Latency and Overload are
// informational (latency quantiles and shed behaviour vary too much
// run-to-run for a strict ratio gate, so the gate pins throughput).
type ServeResult struct {
	Workload   string            `json:"workload"`
	Records    int               `json:"records"`
	TreeNodes  int               `json:"tree_nodes"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Rows       []InferRow        `json:"rows"`
	Latency    []ServeLatencyRow `json:"latency"`
	Overload   ServeOverload     `json:"overload"`
}

// serveClientCounts are the measured concurrency points.
var serveClientCounts = []int{1, 2, 8}

// serveWindow is how long each load point runs.
const serveWindow = 250 * time.Millisecond

// ServeBench measures the cmpserve serving stack end to end (in process):
// closed-loop request throughput and latency at 1/2/8 concurrent clients,
// and the shed rate under a ~2x overload against a bounded queue. The
// model is a CMP-B tree over o.N Function-2 records — the same workload as
// the inference benchmark, so the per-record serving overhead can be read
// against BENCH_infer's bare scoring cost.
func (o Opts) ServeBench() (*ServeResult, error) {
	tr, err := trainServeModel(o)
	if err != nil {
		return nil, err
	}
	out := &ServeResult{
		Workload:   synth.F2.String(),
		Records:    o.N,
		TreeNodes:  tr.Size(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// Pre-marshal a pool of request bodies so the clients measure the
	// server, not their own encoding.
	bodies := serveRequestBodies(o.Seed)

	var serialNs float64
	for _, clients := range serveClientCounts {
		qps, p50, p99, err := serveLoadPoint(tr, clients, bodies)
		if err != nil {
			return nil, err
		}
		ns := 1e9 / qps
		if clients == serveClientCounts[0] {
			serialNs = ns
		}
		out.Rows = append(out.Rows, InferRow{
			Set:              "serve",
			Mode:             "predict",
			Workers:          clients,
			NsPerRecord:      ns,
			MRecordsPerSec:   qps / 1e6,
			SpeedupVsPointer: serialNs / ns,
			// Allocations are not metered on the serving path: every
			// request allocates JSON and HTTP state by design, and GC
			// jitter would flake the gate's strict alloc check. The
			// zero-alloc invariant is gated where it holds — the
			// BENCH_infer scoring rows.
			AllocsPerRecord: 0,
		})
		out.Latency = append(out.Latency, ServeLatencyRow{
			Clients: clients, QPS: qps, P50Ns: p50, P99Ns: p99,
		})
	}

	ov, err := serveOverloadPoint(tr, bodies)
	if err != nil {
		return nil, err
	}
	out.Overload = *ov
	return out, nil
}

// trainServeModel trains the benchmark model through the public API (the
// same surface cmpserve loads through).
func trainServeModel(o Opts) (*cmpdt.Tree, error) {
	ds, err := cmpdt.NewDataset(publicSchema(synth.Schema()))
	if err != nil {
		return nil, err
	}
	if err := synth.GenerateTo(ds, synth.F2, o.N, o.Seed, synth.Options{}); err != nil {
		return nil, err
	}
	return cmpdt.Train(ds, cmpdt.Config{
		Algorithm: cmpdt.CMPB,
		Intervals: o.Intervals,
		Seed:      o.Seed,
	})
}

// publicSchema converts the internal dataset schema to the public one.
func publicSchema(s *dataset.Schema) cmpdt.Schema {
	out := cmpdt.Schema{Classes: append([]string(nil), s.Classes...)}
	for _, a := range s.Attrs {
		attr := cmpdt.Attr{Name: a.Name}
		if a.Kind == dataset.Categorical {
			attr.Values = append([]string(nil), a.Values...)
		}
		out.Attrs = append(out.Attrs, attr)
	}
	return out
}

// serveRequestBodies pre-marshals single-record /predict bodies drawn from
// the Agrawal generator.
func serveRequestBodies(seed int64) [][]byte {
	tbl := synth.Generate(synth.F2, 256, seed+1)
	bodies := make([][]byte, tbl.NumRecords())
	for i := range bodies {
		b, _ := json.Marshal(struct {
			Values []float64 `json:"values"`
		}{tbl.Row(i)})
		bodies[i] = b
	}
	return bodies
}

// newBenchServer builds a serving stack around an already-trained model.
func newBenchServer(tr *cmpdt.Tree, cfg serve.Config) (*serve.Server, error) {
	cfg.Loader = func(string) (cmpdt.Predictor, error) { return tr, nil }
	s := serve.New(cfg)
	if _, err := s.Load("bench://f2"); err != nil {
		return nil, err
	}
	return s, nil
}

// serveLoadPoint runs clients concurrent closed-loop clients against a
// fresh server for serveWindow and returns (qps, p50, p99).
func serveLoadPoint(tr *cmpdt.Tree, clients int, bodies [][]byte) (float64, int64, int64, error) {
	s, err := newBenchServer(tr, serve.Config{QueueDepth: 4096})
	if err != nil {
		return 0, 0, 0, err
	}
	defer drainBenchServer(s)
	h := s.Handler()

	lat := make([][]int64, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; time.Since(start) < serveWindow; i++ {
				req := httptest.NewRequest(http.MethodPost, "/predict",
					bytes.NewReader(bodies[i%len(bodies)]))
				w := httptest.NewRecorder()
				t0 := time.Now()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("serve bench: status %d: %s", w.Code, w.Body)
					return
				}
				lat[c] = append(lat[c], time.Since(t0).Nanoseconds())
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errs:
		return 0, 0, 0, err
	default:
	}
	var all []int64
	for _, l := range lat {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0, 0, 0, fmt.Errorf("serve bench: no requests completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	qps := float64(len(all)) / wall.Seconds()
	return qps, exactQuantile(all, 0.50), exactQuantile(all, 0.99), nil
}

// serveOverloadPoint offers requests at roughly twice the configured
// service rate (ScoreDelay per micro-batch, MaxBatch 1) against a small
// queue and reports the shed split.
func serveOverloadPoint(tr *cmpdt.Tree, bodies [][]byte) (*ServeOverload, error) {
	const (
		scoreDelay = 500 * time.Microsecond
		queueDepth = 4
		window     = 300 * time.Millisecond
	)
	s, err := newBenchServer(tr, serve.Config{
		QueueDepth: queueDepth,
		MaxBatch:   1, // no coalescing: the service rate stays 1/scoreDelay
		ScoreDelay: scoreDelay,
	})
	if err != nil {
		return nil, err
	}
	defer drainBenchServer(s)
	h := s.Handler()

	// Open-loop arrivals at 2x the service rate: one request every
	// scoreDelay/2, each completing (or shedding) on its own goroutine.
	interval := scoreDelay / 2
	total := int(window / interval)
	codes := make([]int, total)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < total; i++ {
		time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/predict",
				bytes.NewReader(bodies[i%len(bodies)]))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	ov := &ServeOverload{
		QueueDepth:   queueDepth,
		ScoreDelayNs: scoreDelay.Nanoseconds(),
	}
	for _, code := range codes {
		switch code {
		case http.StatusOK:
			ov.Served++
		case http.StatusTooManyRequests:
			ov.Shed++
		default:
			return nil, fmt.Errorf("serve bench: overload request got status %d", code)
		}
	}
	ov.OfferedQPS = float64(total) / wall.Seconds()
	ov.ServedQPS = float64(ov.Served) / wall.Seconds()
	ov.ShedRate = float64(ov.Shed) / float64(total)
	return ov, nil
}

// drainBenchServer shuts a bench server down, bounded so a wedged drain
// cannot hang the benchmark.
func drainBenchServer(s *serve.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Drain(ctx)
}

// exactQuantile is nearest-rank over sorted samples.
func exactQuantile(sorted []int64, q float64) int64 {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// PrintServeBench renders the result as aligned tables.
func PrintServeBench(w io.Writer, r *ServeResult) {
	fmt.Fprintf(w, "workload %s, model %d nodes over %d records, GOMAXPROCS %d\n",
		r.Workload, r.TreeNodes, r.Records, r.GOMAXPROCS)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "clients\tqps\tp50\tp99\tns/record\tspeedup")
	for i, row := range r.Rows {
		l := r.Latency[i]
		fmt.Fprintf(tw, "%d\t%.0f\t%.1fus\t%.1fus\t%.1f\t%.2fx\n",
			l.Clients, l.QPS, float64(l.P50Ns)/1e3, float64(l.P99Ns)/1e3,
			row.NsPerRecord, row.SpeedupVsPointer)
	}
	tw.Flush()
	fmt.Fprintf(w, "overload: offered %.0f qps vs queue %d + %.1fms/batch -> served %.0f qps, shed %.1f%% (%d of %d)\n",
		r.Overload.OfferedQPS, r.Overload.QueueDepth,
		float64(r.Overload.ScoreDelayNs)/1e6, r.Overload.ServedQPS,
		100*r.Overload.ShedRate, r.Overload.Shed, r.Overload.Served+r.Overload.Shed)
}

// WriteServeJSON writes the machine-readable baseline consumed by
// BENCH_serve.json.
func WriteServeJSON(w io.Writer, r *ServeResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
