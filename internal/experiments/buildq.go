package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"cmpdt/internal/core"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
)

// BuildqResult is the quantized-build baseline BENCH_buildq.json records:
// raw vs bin-coded CMP-B build throughput over a disk-resident Function-2
// store across worker counts and cache settings, plus the differential
// check that every quantized configuration serializes the identical tree.
type BuildqResult struct {
	Workload   string `json:"workload"`
	Records    int    `json:"records"`
	Intervals  int    `json:"intervals"`
	CacheBytes int64  `json:"cache_bytes"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// TreesIdentical is true when the quantized builds at workers {1, 2, 8}
	// crossed with cache {off, on} all serialize to byte-identical trees.
	TreesIdentical bool `json:"trees_identical"`
	// SpeedupSerial is the headline number: raw build ns/record divided by
	// quantized build ns/record at workers=1 with the cache off.
	SpeedupSerial float64 `json:"speedup_serial"`
	// Rows reuses the shared benchmark row shape so benchdiff gates this
	// file with the same key scheme as the other baselines. Set is
	// "buildq"; Mode is "raw/cache=off", "raw/cache=on", "quant/cache=off"
	// or "quant/cache=on"; SpeedupVsPointer holds raw-over-this for the
	// matching (workers, cache) pair, so raw rows read 1.0.
	Rows []InferRow `json:"rows"`
}

// buildqCacheBytes is the cached configurations' default capacity; large
// enough that the raw store is fully resident, so the quantized speedup
// measured under it is pure compute, not saved I/O.
const buildqCacheBytes = 64 << 20

// BuildqBench measures what bin coding buys the build: a CMP-B tree over a
// disk-resident Function-2 store is built raw (interval scan over float
// records) and quantized (dense histogram scan over bin codes) at workers
// {1, 2, 8} crossed with page cache {off, on}. Each build runs fresh over
// the same file; ns/record is build wall time over the record count.
func (o Opts) BuildqBench() (*BuildqResult, error) {
	disk := o
	disk.UseDisk = true
	src, cleanup, err := disk.source(synth.F2, o.N, o.Seed)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	f, ok := src.(*storage.File)
	if !ok {
		return nil, fmt.Errorf("experiments: buildq bench needs a file source, got %T", src)
	}

	cacheBytes := o.Eval.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = buildqCacheBytes
	}
	n := f.NumRecords()
	out := &BuildqResult{
		Workload:   synth.F2.String(),
		Records:    n,
		Intervals:  o.Intervals,
		CacheBytes: cacheBytes,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	type cfgKey struct {
		workers int
		cached  bool
	}
	rawNs := make(map[cfgKey]float64)
	var quantTrees [][]byte
	for _, quant := range []bool{false, true} {
		for _, workers := range []int{1, 2, 8} {
			for _, cached := range []bool{false, true} {
				cfg := core.Default(core.CMPB)
				cfg.Intervals = o.Intervals
				cfg.Seed = o.Seed
				cfg.Workers = workers
				cfg.Quantize = quant
				if cached {
					cfg.CacheBytes = cacheBytes
				}
				mode := "raw"
				if quant {
					mode = "quant"
				}
				mode += "/cache="
				if cached {
					mode += "on"
				} else {
					mode += "off"
				}
				start := time.Now()
				res, err := core.Build(f, cfg)
				if err != nil {
					return nil, fmt.Errorf("experiments: buildq %s workers=%d: %w", mode, workers, err)
				}
				ns := float64(time.Since(start).Nanoseconds()) / float64(n)
				k := cfgKey{workers, cached}
				if !quant {
					rawNs[k] = ns
				} else {
					var buf bytes.Buffer
					if err := res.Tree.WriteJSON(&buf); err != nil {
						return nil, err
					}
					quantTrees = append(quantTrees, buf.Bytes())
				}
				out.Rows = append(out.Rows, InferRow{
					Set:              "buildq",
					Mode:             mode,
					Workers:          workers,
					NsPerRecord:      ns,
					MRecordsPerSec:   1e3 / ns,
					SpeedupVsPointer: rawNs[k] / ns,
				})
			}
		}
	}

	out.TreesIdentical = true
	for _, tr := range quantTrees[1:] {
		if !bytes.Equal(tr, quantTrees[0]) {
			out.TreesIdentical = false
		}
	}
	out.SpeedupSerial = out.Rows[6].SpeedupVsPointer // quant/cache=off, workers=1
	return out, nil
}

// PrintBuildqBench renders the result as an aligned table.
func PrintBuildqBench(w io.Writer, r *BuildqResult) {
	fmt.Fprintf(w, "workload %s, %d records, %d intervals, cache %d MiB, GOMAXPROCS %d\n",
		r.Workload, r.Records, r.Intervals, r.CacheBytes>>20, r.GOMAXPROCS)
	fmt.Fprintf(w, "quantized trees identical: %v, serial speedup %.2fx\n",
		r.TreesIdentical, r.SpeedupSerial)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tworkers\tns/record\tMrec/s\tspeedup vs raw")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.2f\t%.2fx\n",
			row.Mode, row.Workers, row.NsPerRecord, row.MRecordsPerSec, row.SpeedupVsPointer)
	}
	tw.Flush()
}

// WriteBuildqJSON writes the machine-readable baseline consumed by
// make bench-buildq (BENCH_buildq.json).
func WriteBuildqJSON(w io.Writer, r *BuildqResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
