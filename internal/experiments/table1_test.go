package experiments

import (
	"os"
	"testing"
)

func TestTable1Small(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-dataset run")
	}
	o := Defaults()
	o.N = 50_000 // keep the Agrawal rows quick in tests
	rows, err := o.Table1()
	if err != nil {
		t.Fatal(err)
	}
	PrintTable1(os.Stdout, rows)
	attrMatches := 0
	for _, r := range rows {
		if r.AttrMatch {
			attrMatches++
		}
		if r.Alive > 2 {
			t.Errorf("%s q=%d: %d alive intervals, expected <= 2", r.Dataset, r.Intervals, r.Alive)
		}
	}
	// The paper's claim: with enough intervals CMP finds the same split
	// attribute as the exact algorithm in (nearly) every case.
	if attrMatches < len(rows)*2/3 {
		t.Errorf("only %d/%d attribute matches", attrMatches, len(rows))
	}
}

func TestAccuracyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-algorithm run")
	}
	o := Defaults()
	o.N = 15_000
	rows, err := o.Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	byAlgo := map[string][]AccuracyRow{}
	for _, r := range rows {
		byAlgo[r.Algorithm] = append(byAlgo[r.Algorithm], r)
	}
	// The paper's claims: CMP is as accurate as the exact algorithms, and
	// sampling (windowing) is measurably worse.
	for _, algo := range []string{"cmp-s", "cmp-b", "cmp", "sprint", "sliq", "rainforest", "clouds"} {
		for _, r := range byAlgo[algo] {
			if r.TestAcc < 0.93 {
				t.Errorf("%s on %s: test accuracy %.4f", algo, r.Workload, r.TestAcc)
			}
		}
	}
	for i, w := range byAlgo["window"] {
		full := byAlgo["cmp-s"][i]
		if w.TestAcc >= full.TestAcc {
			t.Logf("windowing unexpectedly matched full-data training on %s", w.Workload)
		}
		if w.TestAcc < 0.7 {
			t.Errorf("windowing degenerate on %s: %.4f", w.Workload, w.TestAcc)
		}
	}
}
