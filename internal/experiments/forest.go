package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"text/tabwriter"

	"cmpdt/internal/core"
	"cmpdt/internal/forest"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
)

// ForestResult is the forest benchmark baseline BENCH_forest.json records:
// the ensemble's determinism invariant (checked, not assumed), its
// out-of-bag estimate, and the serving-path throughput rows in the same
// shape the inference baseline uses, so benchdiff gates both files with one
// key scheme.
type ForestResult struct {
	Workload    string  `json:"workload"`
	Records     int     `json:"records"`
	Attrs       int     `json:"attrs"`
	Trees       int     `json:"trees"`
	FeatureFrac float64 `json:"feature_frac"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	// ForestsIdentical is true when the serialized model is bit-identical
	// across scan worker counts {1, 2, 8} crossed with page cache
	// {off, on} over the same on-disk store.
	ForestsIdentical bool    `json:"forests_identical"`
	OOBError         float64 `json:"oob_error"`
	OOBCount         int     `json:"oob_count"`
	TotalNodes       int     `json:"total_nodes"`
	// Rows measures the ensemble serving paths; Set is "forest" and Mode is
	// one of "pointer" (vote over linked-node walks), "vote" (compiled
	// multi-tree flat walk), "prob" (probability averaging), or
	// "vote-batch" (the sharded batch path; Workers 0 means GOMAXPROCS).
	Rows []InferRow `json:"rows"`
}

// forestBenchTrees keeps the bench forest small enough for CI but large
// enough that tree-order bugs in the compiled layout would surface.
const forestBenchTrees = 16

// ForestBench trains a bagged forest on Function 2, verifies the
// determinism invariant across worker counts and cache configurations over
// one shared on-disk store, and measures the ensemble serving paths.
// Eval.CacheBytes sets the cached runs' capacity (default 64 MiB).
func (o Opts) ForestBench() (*ForestResult, error) {
	dir := o.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "cmpdt-forest")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	path := filepath.Join(dir, fmt.Sprintf("forest-f2-%d-%d.rec", o.N, o.Seed))
	tbl := synth.Generate(synth.F2, o.N, o.Seed)
	fsrc, err := storage.WriteTable(path, tbl)
	if err != nil {
		return nil, err
	}

	cacheBytes := o.Eval.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = 64 << 20
	}
	cfg := forest.Config{
		Trees:       forestBenchTrees,
		FeatureFrac: 0.7,
		Seed:        o.Seed,
		Tree:        core.Default(core.CMPB),
	}
	cfg.Tree.Intervals = o.Intervals
	cfg.Tree.MaxDepth = 10
	cfg.Tree.InMemoryNodeRecords = 1024

	// The differential sweep: every (workers, cache) combination must
	// serialize to the same bytes. The first run's forest is kept for the
	// serving-path measurements.
	var ref *forest.Forest
	var refBytes []byte
	identical := true
	for _, combo := range []struct {
		workers int
		cache   int64
	}{
		{1, 0}, {2, 0}, {8, 0}, {1, cacheBytes}, {2, cacheBytes}, {8, cacheBytes},
	} {
		c := cfg
		c.Tree.Workers = combo.workers
		c.CacheBytes = combo.cache
		res, err := forest.Train(fsrc, c)
		if err != nil {
			return nil, fmt.Errorf("forest bench (workers=%d cache=%d): %w", combo.workers, combo.cache, err)
		}
		var buf bytes.Buffer
		if err := res.Forest.WriteJSON(&buf); err != nil {
			return nil, err
		}
		if ref == nil {
			ref, refBytes = res.Forest, buf.Bytes()
		} else if !bytes.Equal(buf.Bytes(), refBytes) {
			identical = false
		}
	}

	out := &ForestResult{
		Workload:         synth.F2.String(),
		Records:          o.N,
		Attrs:            tbl.Schema().NumAttrs(),
		Trees:            ref.NumTrees(),
		FeatureFrac:      cfg.FeatureFrac,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		ForestsIdentical: identical,
		OOBError:         ref.OOBError,
		OOBCount:         ref.OOBCount,
		TotalNodes:       ref.TotalNodes(),
	}

	cf := ref.Compile()
	n := tbl.NumRecords()
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = tbl.Row(i)
	}
	dst := make([]int, n)
	probs := make([]float64, tbl.Schema().NumClasses())

	add := func(mode string, workers int, ns, pointerNs, allocs float64) {
		out.Rows = append(out.Rows, InferRow{
			Set:              "forest",
			Mode:             mode,
			Workers:          workers,
			NsPerRecord:      ns,
			MRecordsPerSec:   1e3 / ns,
			SpeedupVsPointer: pointerNs / ns,
			AllocsPerRecord:  allocs,
		})
	}

	pointerPass := func() {
		s := 0
		for i := 0; i < n; i++ {
			s += pointerVote(ref, rows[i])
		}
		inferSink += s
	}
	votePass := func() {
		s := 0
		for i := 0; i < n; i++ {
			s += cf.Predict(rows[i])
		}
		inferSink += s
	}
	probPass := func() {
		s := 0
		for i := 0; i < n; i++ {
			s += cf.PredictProb(rows[i], probs)
		}
		inferSink += s
	}
	batch1Pass := func() { cf.PredictBatchWorkers(dst, rows, 1) }
	batchPPass := func() { cf.PredictBatchWorkers(dst, rows, 0) }

	pointerNs := timeMode(n, pointerPass)
	voteNs := timeMode(n, votePass)
	probNs := timeMode(n, probPass)
	batch1Ns := timeMode(n, batch1Pass)
	batchPNs := timeMode(n, batchPPass)
	add("pointer", 1, pointerNs, pointerNs, allocsPerRecord(n, pointerPass))
	add("vote", 1, voteNs, pointerNs, allocsPerRecord(n, votePass))
	add("prob", 1, probNs, pointerNs, allocsPerRecord(n, probPass))
	add("vote-batch", 1, batch1Ns, pointerNs, allocsPerRecord(n, batch1Pass))
	add("vote-batch", 0, batchPNs, pointerNs, allocsPerRecord(n, batchPPass))
	return out, nil
}

// pointerVote is the naive ensemble baseline: walk every linked tree and
// majority-vote, ties to the lowest class (the semantics the compiled path
// must reproduce).
func pointerVote(f *forest.Forest, vals []float64) int {
	var votes [64]int32
	nc := f.Schema.NumClasses()
	v := votes[:nc]
	for i := range v {
		v[i] = 0
	}
	for _, t := range f.Trees {
		v[t.Predict(vals)]++
	}
	best := 0
	for c := 1; c < nc; c++ {
		if v[c] > v[best] {
			best = c
		}
	}
	return best
}

// PrintForestBench renders the result as an aligned table.
func PrintForestBench(w io.Writer, r *ForestResult) {
	fmt.Fprintf(w, "workload %s, %d records x %d attrs, %d trees (feature_frac %.2f, %d nodes), GOMAXPROCS %d\n",
		r.Workload, r.Records, r.Attrs, r.Trees, r.FeatureFrac, r.TotalNodes, r.GOMAXPROCS)
	fmt.Fprintf(w, "forests_identical %v, oob_error %.4f over %d records\n",
		r.ForestsIdentical, r.OOBError, r.OOBCount)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "set\tmode\tworkers\tns/record\tMrec/s\tspeedup\tallocs/rec")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.2f\t%.2fx\t%.4f\n",
			row.Set, row.Mode, row.Workers, row.NsPerRecord, row.MRecordsPerSec, row.SpeedupVsPointer, row.AllocsPerRecord)
	}
	tw.Flush()
}

// WriteForestJSON writes the machine-readable baseline consumed by
// BENCH_forest.json.
func WriteForestJSON(w io.Writer, r *ForestResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
