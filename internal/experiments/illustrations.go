package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"cmpdt/internal/core"
	"cmpdt/internal/eval"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
	"cmpdt/internal/tree"
)

// GiniCurve regenerates the view behind Figure 2: the gini index at every
// interval boundary of one attribute, the estimated lower bound inside each
// interval, and the alive intervals CMP retains.
func (o Opts) GiniCurve(fn synth.Func, attr string) (*core.AttributeCurve, error) {
	src, cleanup, err := o.source(fn, o.N, o.Seed)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	cfg := core.Default(core.CMPS)
	cfg.Intervals = o.Intervals
	cfg.Seed = o.Seed
	return core.AnalyzeAttribute(src, cfg, attr)
}

// PrintGiniCurve renders a curve as an ASCII chart: one row per boundary,
// with a bar proportional to the gini value, estimation rows between them,
// and alive intervals flagged — the textual equivalent of Figure 2's plot.
func PrintGiniCurve(w io.Writer, c *core.AttributeCurve) {
	alive := make(map[int]bool, len(c.Alive))
	for _, k := range c.Alive {
		alive[k] = true
	}
	bar := func(g float64) string {
		if math.IsInf(g, 1) {
			return "(empty)"
		}
		n := int(g * 60)
		if n < 0 {
			n = 0
		}
		return strings.Repeat("#", n)
	}
	fmt.Fprintf(w, "gini curve of %q (gini_min = %.6f, alive intervals marked *)\n", c.Attr, c.GiniMin)
	for k := 0; k < len(c.IntervalEst); k++ {
		mark := " "
		if alive[k] {
			mark = "*"
		}
		fmt.Fprintf(w, " %s interval %3d  est %8.6s %s\n", mark, k, fmtGini(c.IntervalEst[k]), bar(c.IntervalEst[k]))
		if k < len(c.Boundaries) {
			fmt.Fprintf(w, "   boundary %8.6g  gini %8.6f %s\n", c.Boundaries[k], c.BoundaryGini[k], bar(c.BoundaryGini[k]))
		}
	}
}

func fmtGini(g float64) string {
	if math.IsInf(g, 1) {
		return "-"
	}
	return fmt.Sprintf("%.4f", g)
}

// TreesComparison regenerates the Figure 9 / Figure 13 pair: the tree an
// exact univariate classifier (SPRINT) builds for the linearly-correlated
// Function f against the multivariate tree full CMP builds.
func (o Opts) TreesComparison() (univariate, multivariate *tree.Tree, err error) {
	tbl := synth.Generate(synth.FPaper, o.N, o.Seed)

	opts := o.evalOptions()
	opts.PurityStop = 0.95
	_, univariate, err = eval.Run(eval.AlgoSPRINT, storage.NewMem(tbl), nil, nil, opts)
	if err != nil {
		return nil, nil, err
	}
	opts.ObliqueAllPairs = true
	_, multivariate, err = eval.Run(eval.AlgoCMP, storage.NewMem(tbl), nil, nil, opts)
	if err != nil {
		return nil, nil, err
	}
	return univariate, multivariate, nil
}

// PrintTrees renders the Figure 9 / Figure 13 comparison.
func PrintTrees(w io.Writer, univariate, multivariate *tree.Tree) {
	fmt.Fprintf(w, "-- univariate tree (SPRINT; cf. Figure 9): %d leaves, depth %d --\n",
		univariate.Leaves(), univariate.Depth())
	io.WriteString(w, univariate.String())
	fmt.Fprintf(w, "\n-- multivariate tree (CMP; cf. Figure 13): %d leaves, depth %d, %d linear split(s) --\n",
		multivariate.Leaves(), multivariate.Depth(), multivariate.CountLinearSplits())
	io.WriteString(w, multivariate.String())
}

// LearningCurveRow records held-out accuracy at one training size — the
// claim behind the paper's citations [12, 13]: larger training sets improve
// the model, which is why approximate-but-scalable construction matters.
type LearningCurveRow struct {
	Algorithm string
	N         int
	TestAcc   float64
	Leaves    int
}

// LearningCurve measures held-out accuracy as the training set grows, for
// full-data CMP and for sampling-based windowing.
func (o Opts) LearningCurve(fn synth.Func) ([]LearningCurveRow, error) {
	test := synth.Generate(fn, 20_000, o.Seed+5000)
	var rows []LearningCurveRow
	for _, n := range o.Sizes {
		train := synth.Generate(fn, n, o.Seed)
		for _, algo := range []string{eval.AlgoCMPS, eval.AlgoWindow} {
			res, _, err := eval.Run(algo, storage.NewMem(train), nil, test, o.evalOptions())
			if err != nil {
				return nil, err
			}
			rows = append(rows, LearningCurveRow{
				Algorithm: algo, N: n, TestAcc: res.TestAccuracy, Leaves: res.TreeLeaves,
			})
		}
	}
	return rows, nil
}

// PrintLearningCurve renders learning-curve rows.
func PrintLearningCurve(w io.Writer, rows []LearningCurveRow) {
	fmt.Fprintf(w, "%-10s %9s %9s %7s\n", "algorithm", "records", "test-acc", "leaves")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9d %9.4f %7d\n", r.Algorithm, r.N, r.TestAcc, r.Leaves)
	}
}
