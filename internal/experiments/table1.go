package experiments

import (
	"fmt"
	"io"
	"math"

	"cmpdt/internal/core"
	"cmpdt/internal/dataset"
	"cmpdt/internal/exact"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
	"cmpdt/internal/tree"
)

// Table1Row compares the first split chosen by the exact algorithm with the
// one CMP-S derives from its discretized histograms, for one dataset and
// one interval count — one line of the paper's Table 1.
type Table1Row struct {
	Dataset   string
	Records   int
	ExactAttr int
	ExactGini float64

	Intervals int
	Alive     int
	CMPAttr   int
	CMPGini   float64

	AttrMatch bool
	GiniMatch bool
}

// table1Dataset is one workload of Table 1.
type table1Dataset struct {
	name      string
	intervals []int
	load      func(o Opts) (*dataset.Table, error)
}

func table1Datasets(o Opts) []table1Dataset {
	statlog := func(name string) func(Opts) (*dataset.Table, error) {
		return func(o Opts) (*dataset.Table, error) { return synth.Statlog(name, o.Seed) }
	}
	agrawal := func(fn synth.Func) func(Opts) (*dataset.Table, error) {
		return func(o Opts) (*dataset.Table, error) { return synth.Generate(fn, o.N, o.Seed), nil }
	}
	return []table1Dataset{
		{name: "Letter", intervals: []int{10, 15}, load: statlog("letter")},
		{name: "Satimage", intervals: []int{10, 15}, load: statlog("satimage")},
		{name: "Segment", intervals: []int{10, 15}, load: statlog("segment")},
		{name: "Shuttle", intervals: []int{10, 15}, load: statlog("shuttle")},
		{name: "Function 2", intervals: []int{50, 100}, load: agrawal(synth.F2)},
		{name: "Function 7", intervals: []int{50, 100}, load: agrawal(synth.F7)},
	}
}

// Table1 regenerates the split-fidelity table: for every dataset, the exact
// first split versus CMP-S's first split at each interval count.
func (o Opts) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, ds := range table1Datasets(o) {
		tbl, err := ds.load(o)
		if err != nil {
			return nil, err
		}
		split, exactG, ok := exact.BestSplit(tableRows{tbl}, tbl.Schema())
		if !ok {
			return nil, fmt.Errorf("table1: no exact split for %s", ds.name)
		}
		exactAttr := exactSplitAttr(split)
		for _, q := range ds.intervals {
			cfg := core.Default(core.CMPS)
			cfg.Intervals = q
			cfg.MaxAlive = o.Eval.MaxAlive
			if cfg.MaxAlive == 0 {
				cfg.MaxAlive = 2
			}
			cfg.MaxDepth = 1
			cfg.Prune = false
			cfg.InMemoryNodeRecords = -1
			cfg.Seed = o.Seed
			res, err := core.Build(storage.NewMem(tbl), cfg)
			if err != nil {
				return nil, fmt.Errorf("table1: CMP on %s (q=%d): %w", ds.name, q, err)
			}
			row := Table1Row{
				Dataset:   ds.name,
				Records:   tbl.NumRecords(),
				ExactAttr: exactAttr,
				ExactGini: exactG,
				Intervals: q,
				Alive:     res.Stats.RootAliveIntervals,
				CMPAttr:   res.Stats.RootSplitAttr,
				CMPGini:   res.Stats.RootSplitGini,
			}
			row.AttrMatch = row.CMPAttr == row.ExactAttr
			row.GiniMatch = math.Abs(row.CMPGini-row.ExactGini) < 1e-9
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func exactSplitAttr(s tree.Split) int {
	if s.Kind == tree.SplitLinear {
		return s.AttrX
	}
	return s.Attr
}

type tableRows struct{ t *dataset.Table }

func (r tableRows) Len() int            { return r.t.NumRecords() }
func (r tableRows) Row(i int) []float64 { return r.t.Row(i) }
func (r tableRows) Label(i int) int     { return r.t.Label(i) }

// PrintTable1 renders Table 1 rows the way the paper lays them out: '-'
// marks agreement with the exact algorithm.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-11s %9s | %5s %9s | %9s %6s %5s %9s\n",
		"dataset", "records", "attr", "gini", "intervals", "alive", "attr", "gini")
	for _, r := range rows {
		attr := "-"
		if !r.AttrMatch {
			attr = fmt.Sprint(r.CMPAttr)
		}
		gini := "-"
		if !r.GiniMatch {
			gini = fmt.Sprintf("%.6f", r.CMPGini)
		}
		fmt.Fprintf(w, "%-11s %9d | %5d %9.6f | %9d %6d %5s %9s\n",
			r.Dataset, r.Records, r.ExactAttr, r.ExactGini,
			r.Intervals, r.Alive, attr, gini)
	}
}
