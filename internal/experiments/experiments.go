// Package experiments regenerates every table and figure of the paper's
// evaluation section:
//
//	Table 1   — split fidelity of CMP vs the exact algorithm
//	Figure 14 — scalability of CMP-S/CMP-B/CMP on Function 2
//	Figure 15 — scalability on Function 7
//	Figure 16 — CMP vs SPRINT/RainForest/CLOUDS on Function 2
//	Figure 17 — the same comparison on Function 7
//	Figure 18 — the comparison on the linearly-correlated Function f
//	Figure 19 — peak memory across algorithms
//
// Record counts are parameterized: the paper sweeps 200,000-2,500,000
// records on a 1999 workstation; the default sizes here are scaled down so
// a full reproduction finishes in minutes, and the --full flag of
// cmd/cmpbench restores the paper's sizes.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cmpdt/internal/eval"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
)

// Opts configures an experiment run.
type Opts struct {
	// Sizes are the record counts swept by the scalability figures.
	Sizes []int
	// N is the record count for single-size experiments (figures 16-19).
	N int
	// Intervals per attribute for the discretizing algorithms.
	Intervals int
	// Seed drives dataset generation.
	Seed int64
	// UseDisk stores generated datasets in binary files under Dir and
	// trains from them (the paper's disk-resident setting); otherwise
	// datasets stay in memory with simulated I/O accounting.
	UseDisk bool
	// Dir receives the dataset files when UseDisk is set.
	Dir string
	// Eval carries shared algorithm options.
	Eval eval.Options
}

// Defaults returns laptop-scale settings.
func Defaults() Opts {
	return Opts{
		Sizes:     []int{25_000, 50_000, 100_000, 200_000, 400_000},
		N:         200_000,
		Intervals: 100,
		Seed:      1,
	}
}

// PaperScale returns the paper's record counts (slow: millions of records).
func PaperScale() Opts {
	o := Defaults()
	o.Sizes = []int{200_000, 500_000, 1_000_000, 1_500_000, 2_000_000, 2_500_000}
	o.N = 1_000_000
	return o
}

func (o Opts) evalOptions() eval.Options {
	e := o.Eval
	if e.Intervals == 0 {
		e.Intervals = o.Intervals
	}
	if e.Seed == 0 {
		e.Seed = o.Seed
	}
	return e
}

// source materializes a generated dataset as a metered record source.
func (o Opts) source(fn synth.Func, n int, seed int64) (storage.Source, func(), error) {
	if !o.UseDisk {
		tbl := synth.Generate(fn, n, seed)
		return storage.NewMem(tbl), func() {}, nil
	}
	dir := o.Dir
	if dir == "" {
		dir = os.TempDir()
	}
	path := filepath.Join(dir, fmt.Sprintf("cmpdt-%s-%d-%d.rec",
		strings.ReplaceAll(fn.String(), " ", ""), n, seed))
	if f, err := storage.OpenFile(path); err == nil && f.NumRecords() == n {
		return f, func() {}, nil
	}
	w, err := storage.CreateFile(path, synth.Schema())
	if err != nil {
		return nil, nil, err
	}
	if err := synth.GenerateTo(w, fn, n, seed, synth.Options{}); err != nil {
		return nil, nil, err
	}
	f, err := w.Close()
	if err != nil {
		return nil, nil, err
	}
	return f, func() {}, nil
}

// Row is one measurement of one algorithm on one workload size.
type Row struct {
	Figure    string
	Workload  string
	Algorithm string
	N         int

	SimSeconds  float64
	WallSeconds float64
	Scans       int64
	MemoryMB    float64
	Leaves      int
	Depth       int
	Oblique     int
	Accuracy    float64 // training-set accuracy when computed, else 0
}

// runOne trains one algorithm on one workload.
func (o Opts) runOne(figure string, fn synth.Func, n int, algo string, evalOpts eval.Options) (Row, error) {
	src, cleanup, err := o.source(fn, n, o.Seed)
	if err != nil {
		return Row{}, err
	}
	defer cleanup()
	res, _, err := eval.Run(algo, src, nil, nil, evalOpts)
	if err != nil {
		return Row{}, fmt.Errorf("%s on %s (n=%d): %w", algo, fn, n, err)
	}
	return Row{
		Figure:      figure,
		Workload:    fn.String(),
		Algorithm:   algo,
		N:           n,
		SimSeconds:  res.SimSeconds,
		WallSeconds: res.WallTime.Seconds(),
		Scans:       res.Scans,
		MemoryMB:    float64(res.PeakMemBytes) / (1 << 20),
		Leaves:      res.TreeLeaves,
		Depth:       res.TreeDepth,
		Oblique:     res.Oblique,
	}, nil
}

// Scalability regenerates Figures 14 and 15: running time of the CMP family
// as the training set grows.
func (o Opts) Scalability(fn synth.Func) ([]Row, error) {
	figure := "Figure 14"
	if fn == synth.F7 {
		figure = "Figure 15"
	}
	algos := []string{eval.AlgoCMPS, eval.AlgoCMPB, eval.AlgoCMP}
	var rows []Row
	for _, n := range o.Sizes {
		for _, algo := range algos {
			r, err := o.runOne(figure, fn, n, algo, o.evalOptions())
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// Comparison regenerates Figures 16 and 17: CMP against SPRINT, RainForest
// and CLOUDS as the training set grows.
func (o Opts) Comparison(fn synth.Func) ([]Row, error) {
	figure := "Figure 16"
	if fn == synth.F7 {
		figure = "Figure 17"
	}
	algos := []string{eval.AlgoCMP, eval.AlgoSPRINT, eval.AlgoRainForest, eval.AlgoCLOUDS}
	var rows []Row
	for _, n := range o.Sizes {
		for _, algo := range algos {
			r, err := o.runOne(figure, fn, n, algo, o.evalOptions())
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// FunctionF regenerates Figure 18: the linearly-correlated workload where
// CMP's multivariate splits shine. Full CMP runs with the all-pairs
// extension, since the needed (salary, commission) matrix must exist for
// the correlation to be detectable (the paper's Section 2.3 limitation).
func (o Opts) FunctionF() ([]Row, error) {
	var rows []Row
	for _, n := range o.Sizes {
		// Every algorithm stops at 95%-pure nodes, mirroring the original
		// systems' "almost entirely one class" rule; CMP's linear splits
		// reach that purity in two levels while the univariate trees must
		// staircase along the diagonal boundary.
		evalOpts := o.evalOptions()
		evalOpts.PurityStop = 0.95
		cmpOpts := evalOpts
		cmpOpts.ObliqueAllPairs = true
		r, err := o.runOne("Figure 18", synth.FPaper, n, eval.AlgoCMP, cmpOpts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
		for _, algo := range []string{eval.AlgoSPRINT, eval.AlgoRainForest, eval.AlgoCLOUDS} {
			r, err := o.runOne("Figure 18", synth.FPaper, n, algo, evalOpts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// Memory regenerates Figure 19: peak memory of each algorithm as the
// training set grows.
func (o Opts) Memory() ([]Row, error) {
	algos := []string{eval.AlgoCMPS, eval.AlgoCMPB, eval.AlgoCMP,
		eval.AlgoSPRINT, eval.AlgoRainForest}
	var rows []Row
	for _, n := range o.Sizes {
		for _, algo := range algos {
			r, err := o.runOne("Figure 19", synth.F2, n, algo, o.evalOptions())
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// PrintRows renders measurement rows as an aligned table.
func PrintRows(w io.Writer, rows []Row) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-10s %-11s %-11s %9s %8s %9s %6s %9s %7s %6s %8s\n",
		"figure", "workload", "algorithm", "records", "sim(s)", "wall(s)",
		"scans", "mem(MB)", "leaves", "depth", "oblique")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-11s %-11s %9d %8.2f %9.3f %6d %9.2f %7d %6d %8d\n",
			r.Figure, r.Workload, r.Algorithm, r.N, r.SimSeconds, r.WallSeconds,
			r.Scans, r.MemoryMB, r.Leaves, r.Depth, r.Oblique)
	}
}

// WriteCSVRows renders rows as CSV for plotting.
func WriteCSVRows(w io.Writer, rows []Row) error {
	if _, err := fmt.Fprintln(w, "figure,workload,algorithm,records,sim_seconds,wall_seconds,scans,memory_mb,leaves,depth,oblique"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%g,%g,%d,%g,%d,%d,%d\n",
			r.Figure, r.Workload, r.Algorithm, r.N, r.SimSeconds, r.WallSeconds,
			r.Scans, r.MemoryMB, r.Leaves, r.Depth, r.Oblique); err != nil {
			return err
		}
	}
	return nil
}
