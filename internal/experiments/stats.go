package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"cmpdt/internal/core"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
)

// StatsResult is the sufficient-statistics-cache baseline BENCH_stats.json
// records: cached vs uncached quantized CMP-B builds over Function 7 in two
// regimes, plus the differential check that every cached configuration
// serializes the identical tree. "default" is the stock deep build (all
// attributes, pruning on), where the cache's savings come from rounds whose
// frontier drains before the scan; "chain" restricts splits to one numeric
// attribute (pruning off), the axis-coherent regime where partitioned
// statistics serve every round after the first.
type StatsResult struct {
	Workload        string `json:"workload"`
	Records         int    `json:"records"`
	Intervals       int    `json:"intervals"`
	StatsCacheBytes int64  `json:"stats_cache_bytes"`
	GOMAXPROCS      int    `json:"gomaxprocs"`
	// TreesIdentical is true when, per regime, the cached builds at
	// workers {1, 2, 8} all serialize the byte-identical tree to the
	// uncached serial build's.
	TreesIdentical bool `json:"trees_identical"`
	// Default-regime logical scan accounting (identical at every worker
	// count; recorded from the serial builds).
	ScansUncached int `json:"scans_uncached"`
	ScansCached   int `json:"scans_cached"`
	ScansSaved    int `json:"scans_saved"`
	// Chain-regime accounting: most of the build's scans disappear.
	ChainScansUncached int   `json:"chain_scans_uncached"`
	ChainScansCached   int   `json:"chain_scans_cached"`
	ChainScansSaved    int   `json:"chain_scans_saved"`
	ChainCacheHits     int64 `json:"chain_cache_hits"`
	// Rows reuses the shared benchmark row shape so benchdiff gates this
	// file with the same key scheme as the other baselines. Set is
	// "stats"; Mode is "<regime>/cache=off|on"; SpeedupVsPointer holds
	// uncached-over-this for the matching (regime, workers) pair, so the
	// cache-off rows read 1.0.
	Rows []InferRow `json:"rows"`
}

// statsCacheBytes is the experiment's cache budget: comfortably above the
// deep F7 frontier's resident set, so evictions never mask the savings.
const statsCacheBytes = 64 << 20

// statsChainAttr is F7's dominant numeric attribute (loan): restricting
// splits to it keeps every frontier node on the cached matrices' axis.
const statsChainAttr = 8

// StatsBench measures what retained sufficient statistics buy the build: a
// quantized CMP-B tree over in-memory Function 7 (deep: subtrees never
// finish in memory) is built with the cache off and on, in the default and
// chain regimes. Scan accounting comes from the build stats — the cached
// builds must report exactly the uncached scan count minus ScansSaved and
// serialize the identical tree.
func (o Opts) StatsBench() (*StatsResult, error) {
	tbl := synth.Generate(synth.F7, o.N, o.Seed)
	src := storage.NewMem(tbl)
	n := tbl.NumRecords()

	out := &StatsResult{
		Workload:        synth.F7.String(),
		Records:         n,
		Intervals:       o.Intervals,
		StatsCacheBytes: statsCacheBytes,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		TreesIdentical:  true,
	}

	type regime struct {
		name    string
		workers []int
		config  func() core.Config
	}
	regimes := []regime{
		{
			name:    "default",
			workers: []int{1, 2, 8},
			config: func() core.Config {
				cfg := core.Default(core.CMPB)
				cfg.Intervals = o.Intervals
				cfg.Seed = o.Seed
				cfg.Quantize = true
				cfg.InMemoryNodeRecords = -1
				return cfg
			},
		},
		{
			name:    "chain",
			workers: []int{1},
			config: func() core.Config {
				cfg := core.Default(core.CMPB)
				cfg.Intervals = o.Intervals
				cfg.Seed = o.Seed
				cfg.Quantize = true
				cfg.InMemoryNodeRecords = -1
				cfg.Prune = false
				cfg.SplitAttrs = []int{statsChainAttr}
				return cfg
			},
		},
	}

	for _, rg := range regimes {
		uncachedNs := make(map[int]float64)
		var wantTree []byte
		for _, cached := range []bool{false, true} {
			for _, workers := range []int{1, 2, 8} {
				listed := false
				for _, w := range rg.workers {
					if w == workers {
						listed = true
					}
				}
				if !listed {
					continue
				}
				cfg := rg.config()
				cfg.Workers = workers
				mode := rg.name + "/cache=off"
				if cached {
					cfg.StatsCacheBytes = statsCacheBytes
					mode = rg.name + "/cache=on"
				}
				start := time.Now()
				res, err := core.Build(src, cfg)
				if err != nil {
					return nil, fmt.Errorf("experiments: stats %s workers=%d: %w", mode, workers, err)
				}
				ns := float64(time.Since(start).Nanoseconds()) / float64(n)

				var buf bytes.Buffer
				if err := res.Tree.WriteJSON(&buf); err != nil {
					return nil, err
				}
				if wantTree == nil {
					wantTree = buf.Bytes()
				} else if !bytes.Equal(buf.Bytes(), wantTree) {
					out.TreesIdentical = false
				}

				if workers == 1 {
					switch {
					case rg.name == "default" && !cached:
						out.ScansUncached = res.Stats.Scans
					case rg.name == "default" && cached:
						out.ScansCached = res.Stats.Scans
						out.ScansSaved = res.Stats.ScansSaved
					case rg.name == "chain" && !cached:
						out.ChainScansUncached = res.Stats.Scans
					case rg.name == "chain" && cached:
						out.ChainScansCached = res.Stats.Scans
						out.ChainScansSaved = res.Stats.ScansSaved
						out.ChainCacheHits = res.Stats.StatsCacheHits
					}
				}
				if !cached {
					uncachedNs[workers] = ns
				}
				out.Rows = append(out.Rows, InferRow{
					Set:              "stats",
					Mode:             mode,
					Workers:          workers,
					NsPerRecord:      ns,
					MRecordsPerSec:   1e3 / ns,
					SpeedupVsPointer: uncachedNs[workers] / ns,
				})
			}
		}
	}
	return out, nil
}

// PrintStatsBench renders the result as an aligned table.
func PrintStatsBench(w io.Writer, r *StatsResult) {
	fmt.Fprintf(w, "workload %s, %d records, %d intervals, stats cache %d MiB, GOMAXPROCS %d\n",
		r.Workload, r.Records, r.Intervals, r.StatsCacheBytes>>20, r.GOMAXPROCS)
	fmt.Fprintf(w, "cached trees identical: %v\n", r.TreesIdentical)
	fmt.Fprintf(w, "default regime: %d scans uncached, %d cached (%d saved)\n",
		r.ScansUncached, r.ScansCached, r.ScansSaved)
	fmt.Fprintf(w, "chain regime:   %d scans uncached, %d cached (%d saved, %d cache hits)\n",
		r.ChainScansUncached, r.ChainScansCached, r.ChainScansSaved, r.ChainCacheHits)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tworkers\tns/record\tMrec/s\tspeedup vs uncached")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.2f\t%.2fx\n",
			row.Mode, row.Workers, row.NsPerRecord, row.MRecordsPerSec, row.SpeedupVsPointer)
	}
	tw.Flush()
}

// WriteStatsJSON writes the machine-readable baseline consumed by
// make bench-stats (BENCH_stats.json).
func WriteStatsJSON(w io.Writer, r *StatsResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
