package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"cmpdt/internal/core"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
)

// CacheRow is one cold/warm page-cache measurement: a full CMP-B build over
// the file-backed store under one cache state.
type CacheRow struct {
	// Phase is "uncached" (no cache attached), "cold" (cache attached
	// empty) or "warm" (same cache, immediately rebuilt).
	Phase string `json:"phase"`
	// WallSeconds is the build's wall time.
	WallSeconds float64 `json:"wall_seconds"`
	// Scans is the number of logical sequential passes (identical across
	// phases — caching never changes the paper's scan count).
	Scans int64 `json:"scans"`
	// LogicalPages is the logical page accounting (records x record size),
	// also identical across phases.
	LogicalPages int64 `json:"logical_pages_read"`
	// PhysicalPages is the metered physical page traffic, cache misses plus
	// prefetches. Zero for the uncached phase, whose physical reads (one
	// full file pass per scan) are not metered.
	PhysicalPages   int64 `json:"physical_pages_read"`
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	PrefetchedPages int64 `json:"prefetched_pages"`
	Evictions       int64 `json:"cache_evictions"`
}

// CacheResult is the cold-vs-warm page-cache baseline BENCH_cache.json
// records.
type CacheResult struct {
	Workload   string `json:"workload"`
	Records    int    `json:"records"`
	CacheBytes int64  `json:"cache_bytes"`
	Workers    int    `json:"workers"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// TreesIdentical records the differential check: the three builds must
	// serialize to byte-identical trees.
	TreesIdentical bool       `json:"trees_identical"`
	Rows           []CacheRow `json:"rows"`
}

// defaultCacheBytes comfortably holds every experiment dataset, so the warm
// phase measures a fully resident working set.
const defaultCacheBytes = 256 << 20

// CacheBench measures what the page cache buys a disk-resident build: a
// CMP-B tree over a file-backed Function-2 store is built uncached, then
// cold (cache attached, empty), then warm (same cache, still resident from
// the cold build). The cold build already collapses the per-round re-reads
// to one physical pass; the warm rebuild reads almost nothing from disk.
func (o Opts) CacheBench() (*CacheResult, error) {
	disk := o
	disk.UseDisk = true
	src, cleanup, err := disk.source(synth.F2, o.N, o.Seed)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	f, ok := src.(*storage.File)
	if !ok {
		return nil, fmt.Errorf("experiments: cache bench needs a file source, got %T", src)
	}

	cacheBytes := o.Eval.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = defaultCacheBytes
	}
	cfg := core.Default(core.CMPB)
	cfg.Intervals = o.Intervals
	cfg.Seed = o.Seed
	if o.Eval.Workers != 0 {
		cfg.Workers = o.Eval.Workers
	}

	out := &CacheResult{
		Workload:   synth.F2.String(),
		Records:    f.NumRecords(),
		CacheBytes: cacheBytes,
		Workers:    cfg.Workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	var trees [][]byte
	build := func(phase string) error {
		f.ResetStats()
		start := time.Now()
		res, err := core.Build(f, cfg)
		if err != nil {
			return fmt.Errorf("experiments: cache bench %s build: %w", phase, err)
		}
		wall := time.Since(start)
		var buf bytes.Buffer
		if err := res.Tree.WriteJSON(&buf); err != nil {
			return err
		}
		trees = append(trees, buf.Bytes())
		io := res.IO
		out.Rows = append(out.Rows, CacheRow{
			Phase:           phase,
			WallSeconds:     wall.Seconds(),
			Scans:           io.Scans,
			LogicalPages:    io.PagesRead,
			PhysicalPages:   io.CacheMisses + io.PrefetchedPages,
			CacheHits:       io.CacheHits,
			CacheMisses:     io.CacheMisses,
			PrefetchedPages: io.PrefetchedPages,
			Evictions:       io.Evictions,
		})
		return nil
	}

	f.SetCacheBytes(0)
	if err := build("uncached"); err != nil {
		return nil, err
	}
	f.SetCacheBytes(cacheBytes)
	if err := build("cold"); err != nil {
		return nil, err
	}
	if err := build("warm"); err != nil {
		return nil, err
	}

	out.TreesIdentical = bytes.Equal(trees[0], trees[1]) && bytes.Equal(trees[1], trees[2])
	return out, nil
}

// PrintCacheBench renders the result as an aligned table.
func PrintCacheBench(w io.Writer, r *CacheResult) {
	fmt.Fprintf(w, "workload %s, %d records, cache %d MiB, workers %d, trees identical: %v\n",
		r.Workload, r.Records, r.CacheBytes>>20, r.Workers, r.TreesIdentical)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\twall s\tscans\tlogical pages\tphysical pages\thits\tmisses\tprefetched\tevictions")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			row.Phase, row.WallSeconds, row.Scans, row.LogicalPages, row.PhysicalPages,
			row.CacheHits, row.CacheMisses, row.PrefetchedPages, row.Evictions)
	}
	tw.Flush()
}

// WriteCacheJSON writes the machine-readable cold/warm baseline consumed by
// make bench-cache (BENCH_cache.json).
func WriteCacheJSON(w io.Writer, r *CacheResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
