package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"cmpdt/internal/core"
	"cmpdt/internal/obs"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
	"cmpdt/internal/tree"
)

// InferRow is one inference-path measurement.
type InferRow struct {
	// Set distinguishes the two record regimes: "hot" cycles a
	// cache-resident pool of rows (isolating the tree-walk cost, the
	// serving hot path), "scan" streams the full table (DRAM-bound bulk
	// scoring throughput).
	Set string `json:"set"`
	// Mode is "pointer" (the linked Node walk), "flat" (the compiled
	// array walk) or "batch" (the sharded PredictTable path).
	Mode string `json:"mode"`
	// Workers is the shard count for batch rows, 1 otherwise. Zero is the
	// GOMAXPROCS sentinel: the row ran at full parallelism, whatever that
	// is on the recording machine, so baselines compare across machines.
	Workers int `json:"workers"`
	// NsPerRecord is wall time per classified record.
	NsPerRecord float64 `json:"ns_per_record"`
	// MRecordsPerSec is throughput in millions of records per second.
	MRecordsPerSec float64 `json:"mrecords_per_sec"`
	// SpeedupVsPointer is the same set's pointer-walk ns/record divided
	// by this row's (1.0 for the pointer rows themselves).
	SpeedupVsPointer float64 `json:"speedup_vs_pointer"`
	// AllocsPerRecord is heap allocations per classified record (mallocs
	// metered over full passes; the CI bench gate fails on any increase).
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

// InferResult is the inference benchmark baseline BENCH_infer.json records.
type InferResult struct {
	Workload   string     `json:"workload"`
	Records    int        `json:"records"`
	Attrs      int        `json:"attrs"`
	TreeNodes  int        `json:"tree_nodes"`
	TreeDepth  int        `json:"tree_depth"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Rows       []InferRow `json:"rows"`
}

// inferMinWindow is how long each mode is timed; long enough that the
// per-round clock reads vanish into the noise.
const inferMinWindow = 200 * time.Millisecond

// timeMode runs predictAll (one full pass over n records) in a timed loop
// and returns ns per record.
func timeMode(n int, predictAll func()) float64 {
	predictAll() // warm caches and the branch predictor
	rounds := 0
	start := time.Now()
	for {
		predictAll()
		rounds++
		if time.Since(start) >= inferMinWindow {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds*n)
}

// allocsPerRecord meters heap allocations per classified record: mallocs
// delta over a handful of full passes after a warm-up pass. Serial modes
// must report exactly 0; sharded modes pay a few goroutine/WaitGroup
// allocations per pass, amortized over n records.
func allocsPerRecord(n int, predictAll func()) float64 {
	predictAll()
	const passes = 4
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < passes; i++ {
		predictAll()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(passes*n)
}

// inferSink keeps prediction loops observable so they cannot be eliminated.
var inferSink int

// hotPoolSize is the row-pool size of the "hot" regime: a power of two (the
// wrap is a mask) small enough to stay cache-resident.
const hotPoolSize = 4096

// Inference benchmarks the serving paths on the Function-2 tree: the
// pointer-linked walk, the compiled flat walk, and the sharded batch path
// at 1 and GOMAXPROCS workers, each under the "hot" (cache-resident rows)
// and "scan" (full-table streaming) regimes. The tree is trained with CMP-B
// over o.N records and every mode classifies the same training data.
func (o Opts) Inference() (*InferResult, error) {
	tbl := synth.Generate(synth.F2, o.N, o.Seed)
	cfg := core.Default(core.CMPB)
	cfg.Intervals = o.Intervals
	res, err := core.Build(storage.NewMem(tbl), cfg)
	if err != nil {
		return nil, err
	}
	t := res.Tree
	c := tree.Compile(t)
	if o.Eval.Obs != nil {
		c.SetBatchObserver(o.Eval.Obs.Registry().Histogram("infer_batch_ns", obs.DefaultLatencyBounds))
	}
	n := tbl.NumRecords()
	dst := make([]int, n)

	out := &InferResult{
		Workload:   synth.F2.String(),
		Records:    n,
		Attrs:      tbl.Schema().NumAttrs(),
		TreeNodes:  t.Size(),
		TreeDepth:  t.Depth(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	add := func(set, mode string, workers int, ns, pointerNs, allocs float64) {
		out.Rows = append(out.Rows, InferRow{
			Set:              set,
			Mode:             mode,
			Workers:          workers,
			NsPerRecord:      ns,
			MRecordsPerSec:   1e3 / ns,
			SpeedupVsPointer: pointerNs / ns,
			AllocsPerRecord:  allocs,
		})
	}

	// Hot regime: cycle a cache-resident pool so the tree walk, not DRAM
	// latency on the records, is what is measured.
	pool := hotPoolSize
	if pool > n {
		pool = 1 << uint(bitsLen(n)-1) // largest power of two <= n
	}
	rows := make([][]float64, pool)
	for i := range rows {
		rows[i] = tbl.Row(i)
	}
	hotPtrPass := func() {
		s := 0
		for i := 0; i < pool; i++ {
			s += t.Predict(rows[i])
		}
		inferSink += s
	}
	hotFlatPass := func() {
		s := 0
		for i := 0; i < pool; i++ {
			s += c.Predict(rows[i])
		}
		inferSink += s
	}
	hotPtr := timeMode(pool, hotPtrPass)
	hotFlat := timeMode(pool, hotFlatPass)
	add("hot", "pointer", 1, hotPtr, hotPtr, allocsPerRecord(pool, hotPtrPass))
	add("hot", "flat", 1, hotFlat, hotPtr, allocsPerRecord(pool, hotFlatPass))

	// Scan regime: every mode streams the full table.
	scanPtrPass := func() {
		s := 0
		for i := 0; i < n; i++ {
			s += t.Predict(tbl.Row(i))
		}
		inferSink += s
	}
	scanFlatPass := func() {
		s := 0
		for i := 0; i < n; i++ {
			s += c.Predict(tbl.Row(i))
		}
		inferSink += s
	}
	batch1Pass := func() { c.PredictTable(dst, tbl, 1) }
	batchPPass := func() { c.PredictTable(dst, tbl, 0) }
	scanPtr := timeMode(n, scanPtrPass)
	scanFlat := timeMode(n, scanFlatPass)
	batch1 := timeMode(n, batch1Pass)
	batchP := timeMode(n, batchPPass)
	add("scan", "pointer", 1, scanPtr, scanPtr, allocsPerRecord(n, scanPtrPass))
	add("scan", "flat", 1, scanFlat, scanPtr, allocsPerRecord(n, scanFlatPass))
	add("scan", "batch", 1, batch1, scanPtr, allocsPerRecord(n, batch1Pass))
	add("scan", "batch", 0, batchP, scanPtr, allocsPerRecord(n, batchPPass))
	return out, nil
}

// bitsLen returns the number of bits needed to represent n (n >= 1).
func bitsLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// PrintInference renders the result as an aligned table.
func PrintInference(w io.Writer, r *InferResult) {
	fmt.Fprintf(w, "workload %s, %d records x %d attrs, tree %d nodes depth %d, GOMAXPROCS %d\n",
		r.Workload, r.Records, r.Attrs, r.TreeNodes, r.TreeDepth, r.GOMAXPROCS)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "set\tmode\tworkers\tns/record\tMrec/s\tspeedup\tallocs/rec")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.1f\t%.2fx\t%.4f\n",
			row.Set, row.Mode, row.Workers, row.NsPerRecord, row.MRecordsPerSec, row.SpeedupVsPointer, row.AllocsPerRecord)
	}
	tw.Flush()
}

// WriteInferJSON writes the machine-readable baseline consumed by
// BENCH_infer.json.
func WriteInferJSON(w io.Writer, r *InferResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
