package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"cmpdt/internal/core"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
	"cmpdt/internal/tree"
)

// InferRow is one inference-path measurement.
type InferRow struct {
	// Set distinguishes the two record regimes: "hot" cycles a
	// cache-resident pool of rows (isolating the tree-walk cost, the
	// serving hot path), "scan" streams the full table (DRAM-bound bulk
	// scoring throughput).
	Set string `json:"set"`
	// Mode is "pointer" (the linked Node walk), "flat" (the compiled
	// array walk) or "batch" (the sharded PredictTable path).
	Mode string `json:"mode"`
	// Workers is the shard count for batch rows, 1 otherwise.
	Workers int `json:"workers"`
	// NsPerRecord is wall time per classified record.
	NsPerRecord float64 `json:"ns_per_record"`
	// MRecordsPerSec is throughput in millions of records per second.
	MRecordsPerSec float64 `json:"mrecords_per_sec"`
	// SpeedupVsPointer is the same set's pointer-walk ns/record divided
	// by this row's (1.0 for the pointer rows themselves).
	SpeedupVsPointer float64 `json:"speedup_vs_pointer"`
}

// InferResult is the inference benchmark baseline BENCH_infer.json records.
type InferResult struct {
	Workload   string     `json:"workload"`
	Records    int        `json:"records"`
	Attrs      int        `json:"attrs"`
	TreeNodes  int        `json:"tree_nodes"`
	TreeDepth  int        `json:"tree_depth"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Rows       []InferRow `json:"rows"`
}

// inferMinWindow is how long each mode is timed; long enough that the
// per-round clock reads vanish into the noise.
const inferMinWindow = 200 * time.Millisecond

// timeMode runs predictAll (one full pass over n records) in a timed loop
// and returns ns per record.
func timeMode(n int, predictAll func()) float64 {
	predictAll() // warm caches and the branch predictor
	rounds := 0
	start := time.Now()
	for {
		predictAll()
		rounds++
		if time.Since(start) >= inferMinWindow {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds*n)
}

// inferSink keeps prediction loops observable so they cannot be eliminated.
var inferSink int

// hotPoolSize is the row-pool size of the "hot" regime: a power of two (the
// wrap is a mask) small enough to stay cache-resident.
const hotPoolSize = 4096

// Inference benchmarks the serving paths on the Function-2 tree: the
// pointer-linked walk, the compiled flat walk, and the sharded batch path
// at 1 and GOMAXPROCS workers, each under the "hot" (cache-resident rows)
// and "scan" (full-table streaming) regimes. The tree is trained with CMP-B
// over o.N records and every mode classifies the same training data.
func (o Opts) Inference() (*InferResult, error) {
	tbl := synth.Generate(synth.F2, o.N, o.Seed)
	cfg := core.Default(core.CMPB)
	cfg.Intervals = o.Intervals
	res, err := core.Build(storage.NewMem(tbl), cfg)
	if err != nil {
		return nil, err
	}
	t := res.Tree
	c := tree.Compile(t)
	n := tbl.NumRecords()
	dst := make([]int, n)

	out := &InferResult{
		Workload:   synth.F2.String(),
		Records:    n,
		Attrs:      tbl.Schema().NumAttrs(),
		TreeNodes:  t.Size(),
		TreeDepth:  t.Depth(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	add := func(set, mode string, workers int, ns, pointerNs float64) {
		out.Rows = append(out.Rows, InferRow{
			Set:              set,
			Mode:             mode,
			Workers:          workers,
			NsPerRecord:      ns,
			MRecordsPerSec:   1e3 / ns,
			SpeedupVsPointer: pointerNs / ns,
		})
	}

	// Hot regime: cycle a cache-resident pool so the tree walk, not DRAM
	// latency on the records, is what is measured.
	pool := hotPoolSize
	if pool > n {
		pool = 1 << uint(bitsLen(n)-1) // largest power of two <= n
	}
	rows := make([][]float64, pool)
	for i := range rows {
		rows[i] = tbl.Row(i)
	}
	hotPtr := timeMode(pool, func() {
		s := 0
		for i := 0; i < pool; i++ {
			s += t.Predict(rows[i])
		}
		inferSink += s
	})
	hotFlat := timeMode(pool, func() {
		s := 0
		for i := 0; i < pool; i++ {
			s += c.Predict(rows[i])
		}
		inferSink += s
	})
	add("hot", "pointer", 1, hotPtr, hotPtr)
	add("hot", "flat", 1, hotFlat, hotPtr)

	// Scan regime: every mode streams the full table.
	scanPtr := timeMode(n, func() {
		s := 0
		for i := 0; i < n; i++ {
			s += t.Predict(tbl.Row(i))
		}
		inferSink += s
	})
	scanFlat := timeMode(n, func() {
		s := 0
		for i := 0; i < n; i++ {
			s += c.Predict(tbl.Row(i))
		}
		inferSink += s
	})
	batch1 := timeMode(n, func() { c.PredictTable(dst, tbl, 1) })
	batchP := timeMode(n, func() { c.PredictTable(dst, tbl, 0) })
	add("scan", "pointer", 1, scanPtr, scanPtr)
	add("scan", "flat", 1, scanFlat, scanPtr)
	add("scan", "batch", 1, batch1, scanPtr)
	add("scan", "batch", out.GOMAXPROCS, batchP, scanPtr)
	return out, nil
}

// bitsLen returns the number of bits needed to represent n (n >= 1).
func bitsLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// PrintInference renders the result as an aligned table.
func PrintInference(w io.Writer, r *InferResult) {
	fmt.Fprintf(w, "workload %s, %d records x %d attrs, tree %d nodes depth %d, GOMAXPROCS %d\n",
		r.Workload, r.Records, r.Attrs, r.TreeNodes, r.TreeDepth, r.GOMAXPROCS)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "set\tmode\tworkers\tns/record\tMrec/s\tspeedup")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.1f\t%.2fx\n",
			row.Set, row.Mode, row.Workers, row.NsPerRecord, row.MRecordsPerSec, row.SpeedupVsPointer)
	}
	tw.Flush()
}

// WriteInferJSON writes the machine-readable baseline consumed by
// BENCH_infer.json.
func WriteInferJSON(w io.Writer, r *InferResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
