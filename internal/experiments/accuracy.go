package experiments

import (
	"fmt"
	"io"

	"cmpdt/internal/dataset"
	"cmpdt/internal/eval"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
)

// AccuracyRow is one algorithm's held-out accuracy on one workload — the
// cross-cutting check behind the paper's "as accurate as SPRINT" claim and
// its introduction's warning that sampling-based approximations (C4.5
// windowing) lose accuracy relative to algorithms that use every record.
type AccuracyRow struct {
	Workload  string
	Algorithm string
	N         int
	Noise     float64
	TrainAcc  float64
	TestAcc   float64
	Leaves    int
}

// Accuracy trains every algorithm on noisy Agrawal workloads and evaluates
// on clean held-out data.
func (o Opts) Accuracy() ([]AccuracyRow, error) {
	var rows []AccuracyRow
	for _, fn := range []synth.Func{synth.F2, synth.F7} {
		const noise = 0.05
		train := dataset.MustNew(synth.Schema())
		if err := synth.GenerateTo(train, fn, o.N, o.Seed, synth.Options{Noise: noise}); err != nil {
			return nil, err
		}
		test := synth.Generate(fn, o.N/4, o.Seed+1000)
		for _, algo := range eval.Algorithms() {
			res, _, err := eval.Run(algo, storage.NewMem(train), train, test, o.evalOptions())
			if err != nil {
				return nil, fmt.Errorf("accuracy: %s on %s: %w", algo, fn, err)
			}
			rows = append(rows, AccuracyRow{
				Workload:  fn.String(),
				Algorithm: algo,
				N:         o.N,
				Noise:     noise,
				TrainAcc:  res.TrainAccuracy,
				TestAcc:   res.TestAccuracy,
				Leaves:    res.TreeLeaves,
			})
		}
	}
	return rows, nil
}

// PrintAccuracy renders accuracy rows as an aligned table.
func PrintAccuracy(w io.Writer, rows []AccuracyRow) {
	fmt.Fprintf(w, "%-11s %-11s %9s %6s %8s %8s %7s\n",
		"workload", "algorithm", "records", "noise", "train", "test", "leaves")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %-11s %9d %6.2f %8.4f %8.4f %7d\n",
			r.Workload, r.Algorithm, r.N, r.Noise, r.TrainAcc, r.TestAcc, r.Leaves)
	}
}
