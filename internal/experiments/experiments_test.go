package experiments

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"cmpdt/internal/eval"
	"cmpdt/internal/synth"
)

func miniOpts() Opts {
	o := Defaults()
	o.Sizes = []int{4000, 8000}
	o.N = 8000
	o.Intervals = 25
	return o
}

func TestScalabilityRowsComplete(t *testing.T) {
	rows, err := miniOpts().Scalability(synth.F2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*3 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.SimSeconds <= 0 || r.Scans <= 0 || r.Leaves < 1 {
			t.Errorf("row incomplete: %+v", r)
		}
		if r.Figure != "Figure 14" {
			t.Errorf("figure label %q", r.Figure)
		}
	}
	// Larger N must cost more simulated time for the same algorithm.
	byAlgo := map[string][]Row{}
	for _, r := range rows {
		byAlgo[r.Algorithm] = append(byAlgo[r.Algorithm], r)
	}
	for algo, rs := range byAlgo {
		if rs[1].SimSeconds <= rs[0].SimSeconds {
			t.Errorf("%s: sim time did not grow with N (%v -> %v)",
				algo, rs[0].SimSeconds, rs[1].SimSeconds)
		}
	}
}

func TestComparisonShape(t *testing.T) {
	o := miniOpts()
	o.Sizes = []int{10_000}
	rows, err := o.Comparison(synth.F2)
	if err != nil {
		t.Fatal(err)
	}
	sim := map[string]float64{}
	for _, r := range rows {
		sim[r.Algorithm] = r.SimSeconds
	}
	// The paper's headline comparison: SPRINT moves far more bytes than CMP.
	if sim[eval.AlgoSPRINT] <= sim[eval.AlgoCMP] {
		t.Errorf("SPRINT (%v) should cost more than CMP (%v)", sim[eval.AlgoSPRINT], sim[eval.AlgoCMP])
	}
}

func TestFunctionFShape(t *testing.T) {
	o := miniOpts()
	o.Sizes = []int{20_000}
	rows, err := o.FunctionF()
	if err != nil {
		t.Fatal(err)
	}
	var cmp, worst Row
	for _, r := range rows {
		if r.Algorithm == eval.AlgoCMP {
			cmp = r
		} else if r.SimSeconds > worst.SimSeconds {
			worst = r
		}
	}
	if cmp.Oblique == 0 {
		t.Error("CMP found no oblique split on Function f")
	}
	if cmp.Depth > 4 {
		t.Errorf("CMP tree depth %d on Function f, expected a shallow multivariate tree", cmp.Depth)
	}
	if cmp.SimSeconds >= worst.SimSeconds {
		t.Errorf("CMP (%v) not faster than the slowest baseline (%v)", cmp.SimSeconds, worst.SimSeconds)
	}
}

func TestMemoryShape(t *testing.T) {
	o := miniOpts()
	o.Sizes = []int{10_000}
	rows, err := o.Memory()
	if err != nil {
		t.Fatal(err)
	}
	mem := map[string]float64{}
	for _, r := range rows {
		mem[r.Algorithm] = r.MemoryMB
	}
	// RainForest reserves its fixed AVC buffer; every CMP variant stays under it.
	for _, algo := range []string{eval.AlgoCMPS, eval.AlgoCMPB, eval.AlgoCMP} {
		if mem[algo] >= mem[eval.AlgoRainForest] {
			t.Errorf("%s memory %.2f MB not below RainForest's %.2f MB",
				algo, mem[algo], mem[eval.AlgoRainForest])
		}
	}
}

func TestPrintAndCSV(t *testing.T) {
	rows := []Row{{
		Figure: "Figure 14", Workload: "Function 2", Algorithm: "cmp",
		N: 1000, SimSeconds: 1.5, WallSeconds: 0.1, Scans: 5,
		MemoryMB: 0.5, Leaves: 7, Depth: 3, Oblique: 1,
	}}
	var buf bytes.Buffer
	PrintRows(&buf, rows)
	if !strings.Contains(buf.String(), "Function 2") {
		t.Error("PrintRows lost the workload")
	}
	buf.Reset()
	if err := WriteCSVRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "figure,") {
		t.Errorf("CSV output malformed:\n%s", buf.String())
	}
}

func TestDiskSourceRoundTrip(t *testing.T) {
	o := miniOpts()
	o.UseDisk = true
	o.Dir = t.TempDir()
	src, cleanup, err := o.source(synth.F1, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if src.NumRecords() != 3000 {
		t.Fatalf("NumRecords = %d", src.NumRecords())
	}
	// A second call reuses the cached file.
	src2, cleanup2, err := o.source(synth.F1, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup2()
	if src2.NumRecords() != 3000 {
		t.Error("cached dataset file unreadable")
	}
}

func TestGiniCurveExperiment(t *testing.T) {
	o := miniOpts()
	curve, err := o.GiniCurve(synth.F2, "salary")
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Boundaries) < 5 {
		t.Fatalf("only %d boundaries", len(curve.Boundaries))
	}
	var buf bytes.Buffer
	PrintGiniCurve(&buf, curve)
	if !strings.Contains(buf.String(), "gini curve of \"salary\"") {
		t.Error("curve rendering malformed")
	}
	if _, err := o.GiniCurve(synth.F2, "nope"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestTreesComparisonExperiment(t *testing.T) {
	o := miniOpts()
	o.N = 30_000
	uni, multi, err := o.TreesComparison()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's illustration: the univariate tree staircases around the
	// linear boundary, the multivariate one expresses it directly.
	if multi.CountLinearSplits() == 0 {
		t.Error("multivariate tree has no linear split")
	}
	if multi.Leaves() >= uni.Leaves() {
		t.Errorf("multivariate tree (%d leaves) not smaller than univariate (%d)",
			multi.Leaves(), uni.Leaves())
	}
	if multi.Depth() >= uni.Depth() {
		t.Errorf("multivariate depth %d not below univariate %d", multi.Depth(), uni.Depth())
	}
	var buf bytes.Buffer
	PrintTrees(&buf, uni, multi)
	if !strings.Contains(buf.String(), "Figure 13") {
		t.Error("tree rendering malformed")
	}
}

func TestLearningCurveExperiment(t *testing.T) {
	o := miniOpts()
	o.Sizes = []int{3000, 24_000}
	rows, err := o.LearningCurve(synth.F7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Accuracy grows with training size for the full-data algorithm.
	var small, large float64
	for _, r := range rows {
		if r.Algorithm == "cmp-s" {
			if r.N == 3000 {
				small = r.TestAcc
			} else {
				large = r.TestAcc
			}
		}
	}
	if large <= small {
		t.Errorf("full-data accuracy did not grow with N: %.4f -> %.4f", small, large)
	}
}

// TestInference runs the inference benchmark at toy scale and sanity-checks
// the rows and the JSON round-trip.
func TestInference(t *testing.T) {
	o := Defaults()
	o.N = 4_000
	res, err := o.Inference()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(res.Rows))
	}
	var hotFlat, hotPtr float64
	for _, r := range res.Rows {
		if r.NsPerRecord <= 0 || r.MRecordsPerSec <= 0 || r.SpeedupVsPointer <= 0 {
			t.Errorf("non-positive measurement: %+v", r)
		}
		if r.Set == "hot" && r.Mode == "flat" {
			hotFlat = r.NsPerRecord
		}
		if r.Set == "hot" && r.Mode == "pointer" {
			hotPtr = r.NsPerRecord
		}
	}
	if hotFlat == 0 || hotPtr == 0 {
		t.Fatal("hot pointer/flat rows missing")
	}
	if hotFlat >= hotPtr {
		t.Errorf("flat walk (%.1f ns) not faster than pointer walk (%.1f ns)", hotFlat, hotPtr)
	}
	var buf strings.Builder
	if err := WriteInferJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back InferResult
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Records != res.Records || len(back.Rows) != len(res.Rows) {
		t.Error("JSON round-trip lost data")
	}
	PrintInference(io.Discard, res)
}

// TestBuildqBench pins the quantized-build benchmark's shape: 12 rows (raw
// and quantized at workers {1,2,8} x cache {off,on}), positive
// measurements, the quantized-trees-identical differential check, and a
// lossless JSON round-trip. Speedup magnitudes are asserted only by the CI
// bench gate at its committed scale; at this test's size they are noise.
func TestBuildqBench(t *testing.T) {
	o := Defaults()
	o.N = 3_000
	o.Dir = t.TempDir()
	res, err := o.BuildqBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Set != "buildq" {
			t.Errorf("row set %q, want buildq", r.Set)
		}
		if r.NsPerRecord <= 0 || r.MRecordsPerSec <= 0 || r.SpeedupVsPointer <= 0 {
			t.Errorf("non-positive measurement: %+v", r)
		}
	}
	if !res.TreesIdentical {
		t.Error("quantized trees differ across worker/cache configurations")
	}
	if res.SpeedupSerial <= 0 {
		t.Errorf("speedup_serial = %v", res.SpeedupSerial)
	}
	var buf strings.Builder
	if err := WriteBuildqJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back BuildqResult
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Records != res.Records || len(back.Rows) != len(res.Rows) {
		t.Error("JSON round-trip lost data")
	}
	PrintBuildqBench(io.Discard, res)
}

// TestStatsBench pins the statistics-cache benchmark's shape: 8 rows
// (default regime at workers {1,2,8}, chain regime serial, each cache
// off/on), byte-identical trees, exact scan-delta accounting, and real
// savings in the chain regime.
func TestStatsBench(t *testing.T) {
	o := Defaults()
	o.N = 10_000
	res, err := o.StatsBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Set != "stats" {
			t.Errorf("row set %q, want stats", r.Set)
		}
		if r.NsPerRecord <= 0 || r.MRecordsPerSec <= 0 || r.SpeedupVsPointer <= 0 {
			t.Errorf("non-positive measurement: %+v", r)
		}
	}
	if !res.TreesIdentical {
		t.Error("cached trees differ across configurations")
	}
	if res.ScansCached != res.ScansUncached-res.ScansSaved {
		t.Errorf("default regime: %d cached scans, want %d - %d",
			res.ScansCached, res.ScansUncached, res.ScansSaved)
	}
	if res.ChainScansCached != res.ChainScansUncached-res.ChainScansSaved {
		t.Errorf("chain regime: %d cached scans, want %d - %d",
			res.ChainScansCached, res.ChainScansUncached, res.ChainScansSaved)
	}
	if res.ChainScansSaved == 0 || res.ChainCacheHits == 0 {
		t.Errorf("chain regime saved %d scans with %d hits; want real savings",
			res.ChainScansSaved, res.ChainCacheHits)
	}
	var buf strings.Builder
	if err := WriteStatsJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back StatsResult
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Records != res.Records || len(back.Rows) != len(res.Rows) {
		t.Error("JSON round-trip lost data")
	}
	PrintStatsBench(io.Discard, res)
}
