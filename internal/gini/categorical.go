package gini

// MaxSubsetCardinality bounds categorical domains: subsets are represented
// as uint64 bitmasks.
const MaxSubsetCardinality = 64

// exhaustiveSubsetLimit is the largest cardinality for which every subset is
// tried; beyond it a SPRINT-style greedy search is used.
const exhaustiveSubsetLimit = 14

// BestSubsetSplit finds a subset S of category values minimizing
// gini^D(  value in S  vs  value not in S  ). counts[v] is the per-class
// histogram of records with category value v. Small domains are searched
// exhaustively; larger ones greedily (grow S by the single value that most
// reduces the index, keeping the best partition seen — the heuristic SPRINT
// uses for large categorical domains).
//
// ok is false when no non-trivial split exists (fewer than two occupied
// values, or cardinality exceeds MaxSubsetCardinality).
func BestSubsetSplit(counts [][]int) (mask uint64, best float64, ok bool) {
	v := len(counts)
	if v < 2 || v > MaxSubsetCardinality {
		return 0, 0, false
	}
	nc := len(counts[0])
	total := make([]int, nc)
	occupied := 0
	for _, h := range counts {
		nz := false
		for c, n := range h {
			total[c] += n
			if n > 0 {
				nz = true
			}
		}
		if nz {
			occupied++
		}
	}
	if occupied < 2 {
		return 0, 0, false
	}

	if v <= exhaustiveSubsetLimit {
		return exhaustiveSubset(counts, total)
	}
	return greedySubset(counts, total)
}

func exhaustiveSubset(counts [][]int, total []int) (mask uint64, best float64, ok bool) {
	v := len(counts)
	nc := len(total)
	left := make([]int, nc)
	best = 2.0
	// Fix value 0's side to halve the search space; complements are equal.
	for m := uint64(1); m < 1<<uint(v-1); m++ {
		for c := range left {
			left[c] = 0
		}
		empty := true
		for val := 1; val < v; val++ {
			if m&(1<<uint(val-1)) == 0 {
				continue
			}
			for c, n := range counts[val] {
				left[c] += n
				if n > 0 {
					empty = false
				}
			}
		}
		if empty {
			continue
		}
		full := true
		for c := range left {
			if left[c] != total[c] {
				full = false
				break
			}
		}
		if full {
			continue
		}
		if g := SplitBelow(left, total); g < best {
			best = g
			mask = m << 1 // shift back: bit val-1 represented value val
			ok = true
		}
	}
	return mask, best, ok
}

func greedySubset(counts [][]int, total []int) (mask uint64, best float64, ok bool) {
	v := len(counts)
	nc := len(total)
	left := make([]int, nc)
	cur := uint64(0)
	best = 2.0
	for round := 0; round < v-1; round++ {
		pickVal := -1
		pickG := 2.0
		for val := 0; val < v; val++ {
			if cur&(1<<uint(val)) != 0 {
				continue
			}
			nz := false
			for c, n := range counts[val] {
				left[c] += n
				if n > 0 {
					nz = true
				}
			}
			if nz {
				// Skip the degenerate all-records-left partition.
				full := true
				for c := range left {
					if left[c] != total[c] {
						full = false
						break
					}
				}
				if !full {
					if g := SplitBelow(left, total); g < pickG {
						pickG, pickVal = g, val
					}
				}
			}
			for c, n := range counts[val] {
				left[c] -= n
			}
		}
		if pickVal == -1 {
			break
		}
		cur |= 1 << uint(pickVal)
		for c, n := range counts[pickVal] {
			left[c] += n
		}
		if pickG < best {
			best, mask, ok = pickG, cur, true
		}
	}
	return mask, best, ok
}
