package gini

import (
	"math/rand"
	"sort"
	"testing"
)

func BenchmarkIndex(b *testing.B) {
	counts := []int{1234, 5678, 910, 1112}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Index(counts)
	}
}

func BenchmarkSplitBelow(b *testing.B) {
	below := []int{120, 340}
	total := []int{500, 800}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SplitBelow(below, total)
	}
}

func BenchmarkEstimateInterval(b *testing.B) {
	for _, nc := range []int{2, 7, 26} {
		b.Run(benchName("classes", nc), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := make([]int, nc)
			y := make([]int, nc)
			total := make([]int, nc)
			for c := 0; c < nc; c++ {
				x[c] = rng.Intn(1000)
				y[c] = x[c] + rng.Intn(100)
				total[c] = y[c] + rng.Intn(1000)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				EstimateInterval(x, y, total)
			}
		})
	}
}

func BenchmarkBestSplitSorted(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n = 10_000
	vals := make([]float64, n)
	labels := make([]int, n)
	total := make([]int, 2)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
		labels[i] = rng.Intn(2)
		total[labels[i]]++
	}
	sort.Float64s(vals)
	zeros := []int{0, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BestSplitSorted(vals, labels, zeros, total, false)
	}
}

func BenchmarkBestSubsetSplit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, card := range []int{8, 20} {
		counts := make([][]int, card)
		for v := range counts {
			counts[v] = []int{rng.Intn(500), rng.Intn(500)}
		}
		b.Run(benchName("card", card), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				BestSubsetSplit(counts)
			}
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
