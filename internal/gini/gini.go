// Package gini implements the splitting index used throughout the paper:
// the gini index (Eq. 1), the gini index of a partition gini^D (Eq. 2-3),
// its gradient along a class direction (Eq. 4), and the CLOUDS-style
// hill-climbing lower-bound estimate for an interval (Eq. 5).
package gini

// Index returns gini(S) = 1 - sum_j p_j^2 for a set with the given per-class
// counts (Eq. 1). An empty set has index 0 by convention, matching the
// weighted-sum formulas where an empty part contributes nothing.
func Index(counts []int) float64 {
	n := 0
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	sumSq := 0.0
	fn := float64(n)
	for _, c := range counts {
		p := float64(c) / fn
		sumSq += p * p
	}
	return 1 - sumSq
}

// Split returns gini^D(S, cond) = sum_k (n_k/n) gini(S_k) for a partition of
// S into the given parts (Eq. 2, generalized to any number of parts as
// needed by the oblique-split search, which partitions into three).
func Split(parts ...[]int) float64 {
	n := 0
	for _, p := range parts {
		for _, c := range p {
			n += c
		}
	}
	if n == 0 {
		return 0
	}
	g := 0.0
	for _, p := range parts {
		np := 0
		for _, c := range p {
			np += c
		}
		if np == 0 {
			continue
		}
		g += float64(np) / float64(n) * Index(p)
	}
	return g
}

// SplitBelow returns gini^D(S, a <= v) given the cumulative per-class counts
// below of records with a <= v and the node's per-class totals (Eq. 3).
// It avoids materializing the complement.
func SplitBelow(below, total []int) float64 {
	nl, n := 0, 0
	for i := range total {
		nl += below[i]
		n += total[i]
	}
	if n == 0 {
		return 0
	}
	nu := n - nl
	var gl, gu float64
	if nl > 0 {
		sum := 0.0
		for _, c := range below {
			p := float64(c) / float64(nl)
			sum += p * p
		}
		gl = 1 - sum
	}
	if nu > 0 {
		sum := 0.0
		for i := range total {
			p := float64(total[i]-below[i]) / float64(nu)
			sum += p * p
		}
		gu = 1 - sum
	}
	return float64(nl)/float64(n)*gl + float64(nu)/float64(n)*gu
}

// Gradient returns d gini^D(S, a <= v_l) / d x_i (Eq. 4): the sensitivity of
// the partition index to moving one more record of class i below the split.
// x holds the cumulative per-class counts at v_l and total the node's
// per-class totals. The gradient is undefined when either side is empty; the
// caller never evaluates it there (the hill climb starts strictly inside the
// node's value range).
func Gradient(x, total []int, class int) float64 {
	nl, n := 0, 0
	for i := range total {
		nl += x[i]
		n += total[i]
	}
	nu := n - nl
	if nl == 0 || nu == 0 {
		return 0
	}
	fl, fu, fn := float64(nl), float64(nu), float64(n)
	var sumAbove, sumBelow float64 // sum (c_i - x_i)^2 and sum x_i^2
	for i := range total {
		d := float64(total[i] - x[i])
		sumAbove += d * d
		xb := float64(x[i])
		sumBelow += xb * xb
	}
	ci := float64(total[class])
	xi := float64(x[class])
	return 2/(fl*fu)*(ci*fl/fn-xi) - (1/fn)*(sumAbove/(fu*fu)-sumBelow/(fl*fl))
}

// Estimate is the outcome of estimating the minimum gini^D inside one
// interval of a discretized attribute.
type Estimate struct {
	// Est is the final estimate per Eq. 5: the minimum of the two boundary
	// values and the two hill-climbing sweeps.
	Est float64
	// BoundaryLeft and BoundaryRight are gini^D at the interval's left and
	// right boundaries.
	BoundaryLeft, BoundaryRight float64
	// LR and RL are the minima found by the left-to-right and right-to-left
	// hill climbs (Est_GiniLR and Est_GiniRL in the paper).
	LR, RL float64
}

// EstimateInterval estimates the lowest gini^D achievable by any split point
// strictly inside the interval (v_l, v_u], per the CLOUDS heuristic the paper
// adopts (Section 2.1). x holds cumulative per-class counts at the left
// boundary, y at the right boundary, and total the node's per-class totals.
//
// The left-to-right climb starts at the left boundary and repeatedly advances
// past all remaining records of the class with the steepest-descending
// gradient, evaluating gini^D after each advance; this touches each class
// once, so the cost is O(c^2) rather than proportional to the records in the
// interval. The right-to-left climb mirrors it.
func EstimateInterval(x, y, total []int) Estimate {
	c := len(total)
	e := Estimate{
		BoundaryLeft:  SplitBelow(x, total),
		BoundaryRight: SplitBelow(y, total),
	}

	inside := make([]int, c) // records of each class inside the interval
	for i := 0; i < c; i++ {
		inside[i] = y[i] - x[i]
	}

	// Left-to-right: advance the class with the minimum gradient.
	cur := append([]int(nil), x...)
	rem := append([]int(nil), inside...)
	e.LR = climb(cur, rem, total, true)

	// Right-to-left: retreat the class with the maximum gradient.
	cur = append([]int(nil), y...)
	rem = append([]int(nil), inside...)
	e.RL = climb(cur, rem, total, false)

	e.Est = e.BoundaryLeft
	for _, v := range []float64{e.BoundaryRight, e.LR, e.RL} {
		if v < e.Est {
			e.Est = v
		}
	}
	return e
}

// climb performs one hill-climbing sweep. cur is the cumulative count vector
// being mutated; rem the per-class records still movable. When forward is
// true classes are added to cur (left-to-right, choosing the minimum
// gradient); otherwise they are removed (right-to-left, choosing the maximum
// gradient). Returns the minimum gini^D seen strictly after the first move.
func climb(cur, rem, total []int, forward bool) float64 {
	best := 2.0 // above any gini value
	for {
		pick := -1
		var pickG float64
		for i := range rem {
			if rem[i] == 0 {
				continue
			}
			g := Gradient(cur, total, i)
			if pick == -1 || (forward && g < pickG) || (!forward && g > pickG) {
				pick, pickG = i, g
			}
		}
		if pick == -1 {
			return best
		}
		if forward {
			cur[pick] += rem[pick]
		} else {
			cur[pick] -= rem[pick]
		}
		rem[pick] = 0
		if g := SplitBelow(cur, total); g < best {
			best = g
		}
	}
}
