package gini

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIndexKnownValues(t *testing.T) {
	cases := []struct {
		counts []int
		want   float64
	}{
		{[]int{0, 0}, 0},
		{[]int{10, 0}, 0},
		{[]int{0, 10}, 0},
		{[]int{5, 5}, 0.5},
		{[]int{1, 1, 1, 1}, 0.75},
		{[]int{3, 1}, 1 - (0.75*0.75 + 0.25*0.25)},
	}
	for _, c := range cases {
		if got := Index(c.counts); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Index(%v) = %v, want %v", c.counts, got, c.want)
		}
	}
}

func TestIndexBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		g := Index(counts)
		// 0 <= gini < 1, and bounded by 1 - 1/c for c classes.
		c := float64(len(counts))
		return g >= 0 && g <= 1-1/c+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIndexMaximalWhenUniform(t *testing.T) {
	for c := 2; c <= 8; c++ {
		counts := make([]int, c)
		for i := range counts {
			counts[i] = 7
		}
		want := 1 - 1/float64(c)
		if got := Index(counts); math.Abs(got-want) > 1e-12 {
			t.Errorf("uniform %d classes: Index = %v, want %v", c, got, want)
		}
	}
}

func TestSplitWeightedAverage(t *testing.T) {
	left := []int{10, 0}
	right := []int{0, 30}
	// Perfect separation: split index 0.
	if g := Split(left, right); g != 0 {
		t.Errorf("perfect split = %v, want 0", g)
	}
	// A split into identical distributions equals the parent's index.
	a := []int{6, 2}
	parent := Index([]int{12, 4})
	if g := Split(a, a); math.Abs(g-parent) > 1e-12 {
		t.Errorf("identical-halves split = %v, want parent %v", g, parent)
	}
}

func TestSplitNeverAboveParentProperty(t *testing.T) {
	// gini^D of any binary partition never exceeds the parent's index
	// (gini is concave), and never drops below 0.
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		nc := 2 + rng.Intn(4)
		left := make([]int, nc)
		right := make([]int, nc)
		parent := make([]int, nc)
		for c := 0; c < nc; c++ {
			left[c] = rng.Intn(50)
			right[c] = rng.Intn(50)
			parent[c] = left[c] + right[c]
		}
		g := Split(left, right)
		pg := Index(parent)
		if g < -1e-12 || g > pg+1e-12 {
			t.Fatalf("Split(%v,%v) = %v outside [0, parent %v]", left, right, g, pg)
		}
	}
}

func TestSplitBelowMatchesSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		nc := 2 + rng.Intn(4)
		below := make([]int, nc)
		total := make([]int, nc)
		above := make([]int, nc)
		for c := 0; c < nc; c++ {
			below[c] = rng.Intn(30)
			above[c] = rng.Intn(30)
			total[c] = below[c] + above[c]
		}
		want := Split(below, above)
		got := SplitBelow(below, total)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("SplitBelow(%v,%v) = %v, want %v", below, total, got, want)
		}
	}
}

// TestGradientMatchesFiniteDifference checks Eq. 4 against the actual change
// in gini^D when one record of a class moves below the split.
func TestGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		nc := 2 + rng.Intn(3)
		x := make([]int, nc)
		total := make([]int, nc)
		for c := 0; c < nc; c++ {
			x[c] = 1 + rng.Intn(20)
			total[c] = x[c] + 1 + rng.Intn(20)
		}
		for class := 0; class < nc; class++ {
			g0 := SplitBelow(x, total)
			x[class]++
			g1 := SplitBelow(x, total)
			x[class]--
			grad := Gradient(x, total, class)
			// The analytic gradient should track the discrete step within a
			// loose tolerance (it is a derivative, the step is size 1).
			if math.Abs(grad-(g1-g0)) > 0.05 {
				t.Fatalf("gradient %v vs finite difference %v (x=%v total=%v class=%d)",
					grad, g1-g0, x, total, class)
			}
		}
	}
}

func TestEstimateIntervalBoundedByBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 300; iter++ {
		nc := 2 + rng.Intn(3)
		x := make([]int, nc)
		y := make([]int, nc)
		total := make([]int, nc)
		for c := 0; c < nc; c++ {
			x[c] = rng.Intn(20)
			inside := rng.Intn(15)
			y[c] = x[c] + inside
			total[c] = y[c] + rng.Intn(20)
		}
		est := EstimateInterval(x, y, total)
		// Eq. 5 takes the min over both boundaries, so Est can never exceed
		// either of them, and gini values stay in [0, 1).
		if est.Est > est.BoundaryLeft+1e-12 || est.Est > est.BoundaryRight+1e-12 {
			t.Fatalf("Est %v exceeds boundaries (%v, %v)", est.Est, est.BoundaryLeft, est.BoundaryRight)
		}
		if est.Est < -1e-12 || est.Est > 1 {
			t.Fatalf("Est %v out of range", est.Est)
		}
	}
}

// TestEstimateIntervalIsLowerBound verifies the estimate against the true
// minimum over every arrangement the histogram permits: for every split
// position that assigns some of each class's interval records below, the
// hill-climbing estimate must not exceed the best achievable gini when
// records are ordered adversarially. We brute-force small cases.
func TestEstimateIntervalIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		x := []int{rng.Intn(6), rng.Intn(6)}
		inside := []int{rng.Intn(5), rng.Intn(5)}
		if inside[0]+inside[1] == 0 {
			continue
		}
		y := []int{x[0] + inside[0], x[1] + inside[1]}
		total := []int{y[0] + rng.Intn(6), y[1] + rng.Intn(6)}

		est := EstimateInterval(x, y, total)

		// Enumerate every achievable cumulative (a, b) with 0<=a<=inside0,
		// 0<=b<=inside1: each corresponds to some ordering and split point.
		trueMin := math.Min(est.BoundaryLeft, est.BoundaryRight)
		for a := 0; a <= inside[0]; a++ {
			for bb := 0; bb <= inside[1]; bb++ {
				cum := []int{x[0] + a, x[1] + bb}
				if g := SplitBelow(cum, total); g < trueMin {
					trueMin = g
				}
			}
		}
		if est.Est < trueMin-1e-9 {
			// Good: est is allowed to be below the true minimum (it is a
			// lower bound)...
			continue
		}
		if est.Est > trueMin+1e-9 {
			t.Fatalf("estimate %v above true achievable minimum %v (x=%v y=%v total=%v)",
				est.Est, trueMin, x, y, total)
		}
	}
}
