package gini

// BestSplitSorted finds the exact best threshold among records sorted
// ascending by attribute value. vals and labels run in parallel. leftCum
// holds per-class counts of the node's records whose values precede every
// value in vals (the "context" to the left — zero for a whole-node search),
// and total the node's per-class totals. Candidate splits lie between
// adjacent distinct values; the returned threshold is their midpoint, so
// records with value <= thresh go to the low side. A split after the final
// value is considered only when rightOpen is true (records with larger
// values exist beyond this range).
//
// ok is false when no candidate position exists (all values equal and the
// range is not right-open, or vals is empty).
func BestSplitSorted(vals []float64, labels []int, leftCum, total []int, rightOpen bool) (thresh, best float64, ok bool) {
	cum := append([]int(nil), leftCum...)
	best = 2.0
	for i := 0; i < len(vals); i++ {
		cum[labels[i]]++
		atEnd := i == len(vals)-1
		if !atEnd && vals[i+1] == vals[i] {
			continue
		}
		if atEnd && !rightOpen {
			break
		}
		g := SplitBelow(cum, total)
		if g < best {
			best = g
			if atEnd {
				thresh = vals[i]
			} else {
				thresh = vals[i] + (vals[i+1]-vals[i])/2
			}
			ok = true
		}
	}
	if !ok {
		return 0, 0, false
	}
	return thresh, best, true
}
