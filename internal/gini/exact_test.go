package gini

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bruteBestSplit tries every prefix split of the sorted values.
func bruteBestSplit(vals []float64, labels []int, leftCum, total []int, rightOpen bool) (float64, float64, bool) {
	bestG := 2.0
	bestTh := 0.0
	found := false
	cum := append([]int(nil), leftCum...)
	n := 0
	for _, c := range total {
		n += c
	}
	for i := 0; i < len(vals); i++ {
		cum[labels[i]]++
		if i+1 < len(vals) && vals[i+1] == vals[i] {
			continue
		}
		if i == len(vals)-1 && !rightOpen {
			break
		}
		cn := 0
		for _, c := range cum {
			cn += c
		}
		if cn == 0 || cn == n {
			// Degenerate but BestSplitSorted may still report it; it is a
			// valid split position as long as both sides are non-empty in
			// the wider node, which leftCum/rightOpen control.
		}
		g := SplitBelow(cum, total)
		if g < bestG {
			bestG = g
			if i == len(vals)-1 {
				bestTh = vals[i]
			} else {
				bestTh = vals[i] + (vals[i+1]-vals[i])/2
			}
			found = true
		}
	}
	return bestTh, bestG, found
}

func TestBestSplitSortedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(30)
		vals := make([]float64, n)
		labels := make([]int, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(10)) // duplicates likely
			labels[i] = rng.Intn(3)
		}
		sort.Float64s(vals)
		total := make([]int, 3)
		leftCum := make([]int, 3)
		for c := 0; c < 3; c++ {
			leftCum[c] = rng.Intn(5)
			total[c] = leftCum[c] + rng.Intn(5)
		}
		for _, l := range labels {
			total[l]++
		}
		rightOpen := rng.Intn(2) == 0

		th, g, ok := BestSplitSorted(vals, labels, leftCum, total, rightOpen)
		bth, bg, bok := bruteBestSplit(vals, labels, leftCum, total, rightOpen)
		if ok != bok {
			t.Fatalf("ok=%v brute=%v (vals=%v labels=%v)", ok, bok, vals, labels)
		}
		if !ok {
			continue
		}
		if math.Abs(g-bg) > 1e-12 || math.Abs(th-bth) > 1e-12 {
			t.Fatalf("got (%v,%v) brute (%v,%v)", th, g, bth, bg)
		}
	}
}

func TestBestSplitSortedEmptyAndConstant(t *testing.T) {
	total := []int{3, 3}
	if _, _, ok := BestSplitSorted(nil, nil, []int{0, 0}, total, false); ok {
		t.Error("expected no split for empty input")
	}
	vals := []float64{5, 5, 5}
	labels := []int{0, 1, 0}
	if _, _, ok := BestSplitSorted(vals, labels, []int{0, 0}, total, false); ok {
		t.Error("expected no split for constant values with closed right")
	}
	// With an open right side, splitting after the constant run is valid.
	if th, _, ok := BestSplitSorted(vals, labels, []int{0, 0}, total, true); !ok || th != 5 {
		t.Errorf("open-right constant: got th=%v ok=%v, want 5 true", th, ok)
	}
}

func bruteBestSubset(counts [][]int) (uint64, float64, bool) {
	v := len(counts)
	nc := len(counts[0])
	total := make([]int, nc)
	for _, h := range counts {
		for c, n := range h {
			total[c] += n
		}
	}
	bestG := 2.0
	var bestMask uint64
	found := false
	for m := uint64(1); m < 1<<uint(v); m++ {
		left := make([]int, nc)
		ln := 0
		for val := 0; val < v; val++ {
			if m&(1<<uint(val)) != 0 {
				for c, n := range counts[val] {
					left[c] += n
					ln += n
				}
			}
		}
		tn := 0
		for _, c := range total {
			tn += c
		}
		if ln == 0 || ln == tn {
			continue
		}
		if g := SplitBelow(left, total); g < bestG {
			bestG, bestMask, found = g, m, true
		}
	}
	return bestMask, bestG, found
}

func TestBestSubsetSplitExhaustiveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		v := 2 + rng.Intn(6)
		counts := make([][]int, v)
		for i := range counts {
			counts[i] = []int{rng.Intn(8), rng.Intn(8)}
		}
		mask, g, ok := BestSubsetSplit(counts)
		bMask, bg, bok := bruteBestSubset(counts)
		_ = bMask
		if ok != bok {
			t.Fatalf("ok=%v brute=%v counts=%v", ok, bok, counts)
		}
		if !ok {
			continue
		}
		if math.Abs(g-bg) > 1e-12 {
			t.Fatalf("gini %v, brute %v (counts=%v mask=%b bruteMask=%b)", g, bg, counts, mask, bMask)
		}
	}
}

func TestBestSubsetSplitGreedyLargeDomain(t *testing.T) {
	// 20 values; greedy path. Value parity decides the class, so the
	// optimal subset is all-even (or all-odd) and greedy should find a
	// perfect split.
	counts := make([][]int, 20)
	for v := range counts {
		if v%2 == 0 {
			counts[v] = []int{10, 0}
		} else {
			counts[v] = []int{0, 10}
		}
	}
	mask, g, ok := BestSubsetSplit(counts)
	if !ok {
		t.Fatal("no split found")
	}
	if g > 1e-12 {
		t.Errorf("greedy gini = %v, want 0", g)
	}
	// The subset must be exactly one parity class.
	evens := uint64(0)
	for v := 0; v < 20; v += 2 {
		evens |= 1 << uint(v)
	}
	odds := evens << 1
	if mask != evens && mask != odds {
		t.Errorf("mask %b is not a parity class", mask)
	}
}

func TestBestSubsetSplitDegenerate(t *testing.T) {
	if _, _, ok := BestSubsetSplit([][]int{{1, 2}}); ok {
		t.Error("single value should not split")
	}
	if _, _, ok := BestSubsetSplit([][]int{{1, 2}, {0, 0}}); ok {
		t.Error("one occupied value should not split")
	}
	big := make([][]int, 65)
	for i := range big {
		big[i] = []int{1, 1}
	}
	if _, _, ok := BestSubsetSplit(big); ok {
		t.Error("cardinality beyond 64 should be rejected")
	}
}
