// Package exact implements a straightforward in-memory decision-tree
// builder that evaluates the gini index at every distinct attribute value —
// the "exact algorithm" the paper compares CMP's split selection against in
// Table 1. It is also used by the CMP builders to finish small subtrees in
// memory once a node's records fit a buffer, the standard practice for
// disk-oriented tree builders.
package exact

import (
	"sort"

	"cmpdt/internal/dataset"
	"cmpdt/internal/gini"
	"cmpdt/internal/tree"
)

// Config controls exact building.
type Config struct {
	// MinSplitRecords stops splitting nodes with fewer records.
	MinSplitRecords int
	// MaxDepth caps tree depth (in edges below the starting node).
	MaxDepth int
	// MinGiniGain is the minimum index improvement a split must deliver.
	MinGiniGain float64
	// PurityStop, when positive, stops splitting nodes whose majority class
	// covers at least this fraction of records.
	PurityStop float64
	// AllowedAttrs, when non-nil, restricts splits to attributes whose
	// entry is true — the in-memory leg of the CMP builder's feature
	// subsampling. Indexed by attribute; nil allows everything.
	AllowedAttrs []bool
}

// DefaultConfig mirrors the CMP builder's stopping rules.
func DefaultConfig() Config {
	return Config{MinSplitRecords: 2, MaxDepth: 32, MinGiniGain: 1e-4}
}

// Rows is the minimal row container the builder needs; *dataset.Table and
// the CMP builder's record buffers both satisfy it trivially via adapters.
type Rows interface {
	Len() int
	Row(i int) []float64
	Label(i int) int
}

type tableRows struct{ t *dataset.Table }

func (r tableRows) Len() int            { return r.t.NumRecords() }
func (r tableRows) Row(i int) []float64 { return r.t.Row(i) }
func (r tableRows) Label(i int) int     { return r.t.Label(i) }

// BuildTable builds an exact tree over an in-memory table.
func BuildTable(t *dataset.Table, cfg Config) *tree.Tree {
	root := BuildSubtree(tableRows{t}, t.Schema(), cfg)
	return &tree.Tree{Root: root, Schema: t.Schema()}
}

// BuildSubtree builds an exact subtree over the given rows and returns its
// root node. The rows are copied into scratch index arrays; the container is
// not modified.
func BuildSubtree(rows Rows, schema *dataset.Schema, cfg Config) *tree.Node {
	n := rows.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	b := &builder{rows: rows, schema: schema, cfg: cfg}
	return b.build(idx, 0)
}

// BestSplit evaluates every attribute of the rows exactly and returns the
// best split with its gini index. ok is false when no split partitions the
// rows. This is the primitive Table 1's "Exact Algo." columns are produced
// with.
func BestSplit(rows Rows, schema *dataset.Schema) (tree.Split, float64, bool) {
	n := rows.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	b := &builder{rows: rows, schema: schema, cfg: DefaultConfig()}
	return b.bestSplit(idx)
}

type builder struct {
	rows   Rows
	schema *dataset.Schema
	cfg    Config
}

func (b *builder) classCounts(idx []int) []int {
	counts := make([]int, b.schema.NumClasses())
	for _, i := range idx {
		counts[b.rows.Label(i)]++
	}
	return counts
}

func (b *builder) build(idx []int, depth int) *tree.Node {
	node := &tree.Node{}
	node.SetCounts(b.classCounts(idx))
	if node.Gini == 0 || node.N < b.cfg.MinSplitRecords || depth >= b.cfg.MaxDepth {
		return node
	}
	if b.cfg.PurityStop > 0 && float64(node.ClassCounts[node.Class]) >= b.cfg.PurityStop*float64(node.N) {
		return node
	}
	split, g, ok := b.bestSplit(idx)
	if !ok || node.Gini-g < b.cfg.MinGiniGain {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if split.GoesLeft(b.rows.Row(i)) {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	node.Split = &split
	node.Left = b.build(left, depth+1)
	node.Right = b.build(right, depth+1)
	return node
}

// bestSplit scans every attribute for the best exact split of the rows in
// idx.
func (b *builder) bestSplit(idx []int) (tree.Split, float64, bool) {
	var best tree.Split
	bestG := 2.0
	found := false
	total := b.classCounts(idx)
	zeros := make([]int, len(total))

	vals := make([]float64, len(idx))
	labels := make([]int, len(idx))
	order := make([]int, len(idx))

	for a := 0; a < b.schema.NumAttrs(); a++ {
		if b.cfg.AllowedAttrs != nil && !b.cfg.AllowedAttrs[a] {
			continue
		}
		attr := &b.schema.Attrs[a]
		if attr.Kind == dataset.Categorical {
			counts := make([][]int, attr.Cardinality())
			for v := range counts {
				counts[v] = make([]int, len(total))
			}
			for _, i := range idx {
				counts[int(b.rows.Row(i)[a])][b.rows.Label(i)]++
			}
			mask, g, ok := gini.BestSubsetSplit(counts)
			if ok && g < bestG {
				bestG = g
				best = tree.Split{Kind: tree.SplitCategorical, Attr: a, Subset: mask}
				found = true
			}
			continue
		}
		for j, i := range idx {
			order[j] = j
			vals[j] = b.rows.Row(i)[a]
			labels[j] = b.rows.Label(i)
		}
		sort.Slice(order, func(x, y int) bool { return vals[order[x]] < vals[order[y]] })
		sortedVals := make([]float64, len(idx))
		sortedLabels := make([]int, len(idx))
		for j, o := range order {
			sortedVals[j] = vals[o]
			sortedLabels[j] = labels[o]
		}
		thresh, g, ok := gini.BestSplitSorted(sortedVals, sortedLabels, zeros, total, false)
		if ok && g < bestG {
			bestG = g
			best = tree.Split{Kind: tree.SplitNumeric, Attr: a, Threshold: thresh}
			found = true
		}
	}
	return best, bestG, found
}
