package exact

import (
	"math"
	"math/rand"
	"testing"

	"cmpdt/internal/dataset"
	"cmpdt/internal/gini"
	"cmpdt/internal/synth"
	"cmpdt/internal/tree"
)

func separableTable(t *testing.T, n int) *dataset.Table {
	t.Helper()
	schema := &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Numeric},
			{Name: "noise", Kind: dataset.Numeric},
		},
		Classes: []string{"lo", "hi"},
	}
	tbl := dataset.MustNew(schema)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		x := rng.Float64() * 100
		label := 0
		if x > 50 {
			label = 1
		}
		tbl.Append([]float64{x, rng.Float64()}, label)
	}
	return tbl
}

func TestBuildSeparable(t *testing.T) {
	tbl := separableTable(t, 500)
	tr := BuildTable(tbl, DefaultConfig())
	for i := 0; i < tbl.NumRecords(); i++ {
		if tr.Predict(tbl.Row(i)) != tbl.Label(i) {
			t.Fatalf("record %d misclassified", i)
		}
	}
	if tr.Depth() != 1 {
		t.Errorf("separable data needs depth 1, got %d", tr.Depth())
	}
	sp := tr.Root.Split
	if sp.Attr != 0 || math.Abs(sp.Threshold-50) > 2 {
		t.Errorf("split %v, want x near 50", sp.Describe(tbl.Schema()))
	}
}

func TestBuildRespectsStoppingRules(t *testing.T) {
	tbl := separableTable(t, 500)
	if tr := BuildTable(tbl, Config{MinSplitRecords: 2, MaxDepth: 0, MinGiniGain: 1e-4}); tr.Depth() != 0 {
		t.Error("MaxDepth 0 violated")
	}
	if tr := BuildTable(tbl, Config{MinSplitRecords: 1000, MaxDepth: 10, MinGiniGain: 1e-4}); tr.Depth() != 0 {
		t.Error("MinSplitRecords violated")
	}
	// Purity stop: data 99% one class with a separable 1%.
	schema := tbl.Schema()
	nearly := dataset.MustNew(schema)
	for i := 0; i < 1000; i++ {
		label := 0
		if i < 5 {
			label = 1
		}
		nearly.Append([]float64{float64(i), 0}, label)
	}
	cfg := DefaultConfig()
	cfg.PurityStop = 0.99
	if tr := BuildSubtree(tableRows{nearly}, schema, cfg); !tr.IsLeaf() {
		t.Error("purity stop violated")
	}
}

func TestBuildCategorical(t *testing.T) {
	schema := &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "c", Kind: dataset.Categorical, Values: []string{"a", "b", "c", "d"}},
		},
		Classes: []string{"no", "yes"},
	}
	tbl := dataset.MustNew(schema)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 400; i++ {
		v := rng.Intn(4)
		label := 0
		if v == 1 || v == 3 {
			label = 1
		}
		tbl.Append([]float64{float64(v)}, label)
	}
	tr := BuildTable(tbl, DefaultConfig())
	if tr.Depth() != 1 || tr.Root.Split.Kind != tree.SplitCategorical {
		t.Fatalf("want one categorical split, got depth %d", tr.Depth())
	}
	for i := 0; i < tbl.NumRecords(); i++ {
		if tr.Predict(tbl.Row(i)) != tbl.Label(i) {
			t.Fatal("categorical tree misclassifies")
		}
	}
}

// TestBestSplitOptimalProperty cross-checks BestSplit against a brute-force
// scan over every threshold of every attribute on small random tables.
func TestBestSplitOptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	schema := &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Numeric},
			{Name: "y", Kind: dataset.Numeric},
		},
		Classes: []string{"a", "b"},
	}
	for iter := 0; iter < 50; iter++ {
		tbl := dataset.MustNew(schema)
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			tbl.Append([]float64{float64(rng.Intn(8)), float64(rng.Intn(8))}, rng.Intn(2))
		}
		_, got, ok := BestSplit(tableRows{tbl}, schema)
		best := 2.0
		for a := 0; a < 2; a++ {
			for th := 0.5; th < 8; th++ {
				left := make([]int, 2)
				right := make([]int, 2)
				for i := 0; i < n; i++ {
					if tbl.Value(i, a) <= th {
						left[tbl.Label(i)]++
					} else {
						right[tbl.Label(i)]++
					}
				}
				if l, r := left[0]+left[1], right[0]+right[1]; l == 0 || r == 0 {
					continue
				}
				if g := gini.Split(left, right); g < best {
					best = g
				}
			}
		}
		if !ok {
			if best < 2.0 {
				t.Fatalf("BestSplit found nothing but brute force found %v", best)
			}
			continue
		}
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("BestSplit gini %v, brute force %v", got, best)
		}
	}
}

func TestBuildMatchesLabelsOnAgrawal(t *testing.T) {
	tbl := synth.Generate(synth.F3, 3000, 4)
	tr := BuildTable(tbl, DefaultConfig())
	correct := 0
	for i := 0; i < tbl.NumRecords(); i++ {
		if tr.Predict(tbl.Row(i)) == tbl.Label(i) {
			correct++
		}
	}
	if acc := float64(correct) / 3000; acc < 0.99 {
		t.Errorf("exact builder accuracy %.3f on F3", acc)
	}
}
