// The quickstart example trains a CMP decision tree on the paper's loan
// application scenario (Figure 1): applicants described by age, salary and
// commission, approved when they are at least 40 and their total income
// reaches 100,000 — the linearly-correlated rule full CMP can express in a
// single multivariate split.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cmpdt"
)

func main() {
	schema := cmpdt.Schema{
		Attrs: []cmpdt.Attr{
			{Name: "age"},
			{Name: "salary"},
			{Name: "commission"},
		},
		Classes: []string{"Declined", "Approved"},
	}
	ds, err := cmpdt.NewDataset(schema)
	if err != nil {
		log.Fatal(err)
	}

	// Generate loan applications with the paper's Section 2.3 rule:
	// approved iff age >= 40 and salary+commission >= 100,000.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50_000; i++ {
		age := 18 + rng.Float64()*62
		salary := 20_000 + rng.Float64()*130_000
		commission := 0.0
		if salary < 75_000 {
			commission = 10_000 + rng.Float64()*65_000
		}
		label := 0
		if age >= 40 && salary+commission >= 100_000 {
			label = 1
		}
		if err := ds.Append([]float64{age, salary, commission}, label); err != nil {
			log.Fatal(err)
		}
	}

	train, test := ds.Split(0.8, 1)

	tree, stats, err := cmpdt.TrainStats(train, cmpdt.Config{
		Algorithm:       cmpdt.CMP,
		ObliqueAllPairs: true, // let CMP see the (salary, commission) pair
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained %s over %d records in %d scans\n",
		cmpdt.CMP, train.Len(), stats.Scans)
	fmt.Printf("tree: %d leaves, depth %d, %d linear split(s)\n",
		tree.Leaves(), tree.Depth(), tree.LinearSplits())
	fmt.Printf("train accuracy %.3f, test accuracy %.3f\n\n",
		tree.Accuracy(train), tree.Accuracy(test))
	fmt.Print(tree)

	fmt.Println()
	for _, applicant := range [][]float64{
		{23, 40_000, 30_000}, // young: declined regardless of income
		{52, 85_000, 0},      // 40+ but total income below 100k
		{52, 60_000, 55_000}, // 40+ and salary+commission above 100k
	} {
		fmt.Printf("age=%.0f salary=%.0f commission=%.0f -> %s\n",
			applicant[0], applicant[1], applicant[2], tree.PredictClass(applicant))
	}
}
