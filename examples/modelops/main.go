// The modelops example walks the model lifecycle a production user needs:
// cross-validate a configuration, train the final tree, inspect it (feature
// importance, per-class metrics, a prediction explanation), export it to
// Graphviz, save it to disk, and reload it for serving.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"cmpdt"
)

func main() {
	schema := cmpdt.Schema{
		Attrs: []cmpdt.Attr{
			{Name: "tenure_months"},
			{Name: "monthly_spend"},
			{Name: "support_tickets"},
			{Name: "plan", Values: []string{"basic", "plus", "enterprise"}},
		},
		Classes: []string{"stays", "churns"},
	}
	ds, err := cmpdt.NewDataset(schema)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40_000; i++ {
		tenure := rng.Float64() * 72
		spend := 10 + rng.ExpFloat64()*60
		tickets := float64(rng.Intn(8))
		plan := rng.Intn(3)
		// Churn concentrates in new, ticket-heavy, basic-plan customers.
		churn := 0.03
		if tenure < 12 && tickets >= 3 {
			churn = 0.7
			if plan == 0 {
				churn = 0.85
			}
		} else if tenure < 6 {
			churn = 0.3
		}
		label := 0
		if rng.Float64() < churn {
			label = 1
		}
		if err := ds.Append([]float64{tenure, spend, tickets, float64(plan)}, label); err != nil {
			log.Fatal(err)
		}
	}

	cfg := cmpdt.Config{Algorithm: cmpdt.CMPB}

	// 1. Cross-validate the configuration before committing to it.
	accs, mean, err := cmpdt.CrossValidate(ds, cfg, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5-fold cross-validation: mean accuracy %.4f (folds %.4v)\n\n", mean, accs)

	// 2. Train the final model on everything.
	train, test := ds.Split(0.85, 3)
	tree, err := cmpdt.Train(train, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect: per-class report and feature importance.
	rep := tree.Evaluate(test)
	fmt.Printf("held-out accuracy %.4f, macro-F1 %.4f\n", rep.Accuracy, rep.MacroF1)
	for _, c := range rep.PerClass {
		fmt.Printf("  %-8s support=%4d precision=%.3f recall=%.3f f1=%.3f\n",
			c.Class, c.Support, c.Precision, c.Recall, c.F1)
	}
	fmt.Println("\nfeature importance:")
	for i, imp := range tree.Importance() {
		fmt.Printf("  %-16s %.3f\n", schema.Attrs[i].Name, imp)
	}

	// 4. Explain one prediction.
	customer := []float64{4, 35, 5, 0} // 4 months in, 5 tickets, basic plan
	fmt.Printf("\nwhy is this customer %q?\n", tree.PredictClass(customer))
	for _, step := range tree.Explain(customer) {
		fmt.Printf("  %s\n", step)
	}

	// 5. Export for visualization and persist for serving.
	dir := os.TempDir()
	dotPath := filepath.Join(dir, "churn.dot")
	modelPath := filepath.Join(dir, "churn-model.json")
	f, err := os.Create(dotPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.WriteDOT(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	if err := tree.SaveModel(modelPath); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(dotPath)
	defer os.Remove(modelPath)

	// 6. Reload and serve.
	served, err := cmpdt.LoadModel(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreloaded model agrees: %v\n",
		served.Predict(customer) == tree.Predict(customer))
	fmt.Printf("artifacts: %s, %s\n", dotPath, modelPath)
}
