// The compare example reproduces the paper's core comparison in miniature:
// every classifier in the repository trains on the same Agrawal Function 2
// workload, and the program reports each one's scan count, simulated I/O
// time, peak memory, tree shape and accuracy — the quantities behind
// Figures 16 and 19.
package main

import (
	"fmt"
	"log"

	"cmpdt/internal/dataset"
	"cmpdt/internal/eval"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
)

func main() {
	const n = 100_000
	full := synth.Generate(synth.F2, n, 5)
	train, test := dataset.TrainTestSplit(full, 0.8, 5)

	fmt.Printf("Function 2, %d training records, %d test records\n\n",
		train.NumRecords(), test.NumRecords())
	fmt.Printf("%-11s %7s %8s %9s %8s %7s %7s %8s\n",
		"algorithm", "scans", "sim(s)", "mem(MB)", "leaves", "depth", "train", "test")

	for _, algo := range eval.Algorithms() {
		src := storage.NewMem(train)
		res, _, err := eval.Run(algo, src, train, test, eval.Options{})
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		fmt.Printf("%-11s %7d %8.2f %9.2f %8d %7d %7.3f %8.3f\n",
			algo, res.Scans, res.SimSeconds, float64(res.PeakMemBytes)/(1<<20),
			res.TreeLeaves, res.TreeDepth, res.TrainAccuracy, res.TestAccuracy)
	}

	fmt.Println("\nThe shape to look for (paper, Figures 16 and 19):")
	fmt.Println("  - SPRINT moves an order of magnitude more bytes (attribute lists)")
	fmt.Println("  - CLOUDS-SSE needs roughly twice CMP-S's scans (its exact second pass)")
	fmt.Println("  - RainForest is competitive in time but reserves a ~20 MB AVC buffer")
	fmt.Println("  - the CMP family matches exact-algorithm accuracy at a fraction of the I/O")
}
