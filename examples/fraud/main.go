// The fraud example exercises the public API on a domain-flavored workload
// with mixed attribute types: synthetic card transactions with categorical
// merchant categories and channels, where fraud concentrates in foreign
// card-not-present transactions whose amount is large relative to the
// account's history. It demonstrates categorical subset splits alongside
// numeric thresholds and the disk-resident training path.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"cmpdt"
)

var (
	merchants = []string{"grocery", "fuel", "electronics", "travel", "jewelry", "gaming", "services"}
	channels  = []string{"chip", "swipe", "online", "phone"}
)

func main() {
	schema := cmpdt.Schema{
		Attrs: []cmpdt.Attr{
			{Name: "amount"},
			{Name: "avg_amount_30d"},
			{Name: "merchant", Values: merchants},
			{Name: "channel", Values: channels},
			{Name: "foreign"}, // 0/1 numeric indicator
			{Name: "hour"},
		},
		Classes: []string{"legit", "fraud"},
	}
	ds, err := cmpdt.NewDataset(schema)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60_000; i++ {
		avg := 20 + rng.ExpFloat64()*80
		amount := avg * (0.2 + rng.ExpFloat64())
		merchant := rng.Intn(len(merchants))
		channel := rng.Intn(len(channels))
		foreign := 0.0
		if rng.Float64() < 0.2 {
			foreign = 1
		}
		hour := float64(rng.Intn(24))
		risk := fraudRisk(amount, avg, merchant, channel, foreign)
		label := 0
		if rng.Float64() < risk {
			label = 1
		}
		if err := ds.Append([]float64{amount, avg, float64(merchant), float64(channel), foreign, hour}, label); err != nil {
			log.Fatal(err)
		}
	}

	train, test := ds.Split(0.8, 9)

	// Store the training set in the binary record format and train from
	// disk, the paper's setting for large datasets.
	path := filepath.Join(os.TempDir(), "cmpdt-fraud.rec")
	if err := train.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	tree, stats, err := cmpdt.TrainFile(path, cmpdt.Config{Algorithm: cmpdt.CMPB})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s from %s in %d scans (peak memory %.1f KB)\n",
		cmpdt.CMPB, path, stats.Scans, float64(stats.PeakMemoryBytes)/1024)
	fmt.Printf("tree: %d leaves, depth %d\n", tree.Leaves(), tree.Depth())
	fmt.Printf("train accuracy %.4f, test accuracy %.4f\n\n", tree.Accuracy(train), tree.Accuracy(test))

	// Fraud-relevant error profile: how many frauds does the tree catch?
	caught, missed, falseAlarms := 0, 0, 0
	total := 0
	for _, tx := range sampleTransactions(rng, 200_000) {
		want := tx.label
		got := tree.Predict(tx.vals)
		switch {
		case want == 1 && got == 1:
			caught++
		case want == 1 && got == 0:
			missed++
		case want == 0 && got == 1:
			falseAlarms++
		}
		total++
	}
	fmt.Printf("on %d fresh transactions: caught %d frauds, missed %d, %d false alarms\n",
		total, caught, missed, falseAlarms)
}

// fraudRisk is the generator's ground truth: card-not-present (online or
// phone) transactions from abroad whose amount is well above the account's
// 30-day average are very likely fraud, with risky merchant categories
// amplifying the odds; domestic overspending carries moderate risk.
func fraudRisk(amount, avg float64, merchant, channel int, foreign float64) float64 {
	risk := 0.002
	switch {
	case channel >= 2 && foreign == 1 && amount > 1.5*avg:
		risk = 0.85
		if m := merchants[merchant]; m == "electronics" || m == "jewelry" || m == "gaming" {
			risk = 0.95
		}
	case channel >= 2 && amount > 4*avg:
		risk = 0.5
	}
	return risk
}

type tx struct {
	vals  []float64
	label int
}

// sampleTransactions draws fresh transactions from the same generator.
func sampleTransactions(rng *rand.Rand, n int) []tx {
	out := make([]tx, 0, n)
	for i := 0; i < n; i++ {
		avg := 20 + rng.ExpFloat64()*80
		amount := avg * (0.2 + rng.ExpFloat64())
		merchant := rng.Intn(len(merchants))
		channel := rng.Intn(len(channels))
		foreign := 0.0
		if rng.Float64() < 0.2 {
			foreign = 1
		}
		hour := float64(rng.Intn(24))
		risk := fraudRisk(amount, avg, merchant, channel, foreign)
		label := 0
		if rng.Float64() < risk {
			label = 1
		}
		out = append(out, tx{vals: []float64{amount, avg, float64(merchant), float64(channel), foreign, hour}, label: label})
	}
	return out
}
