// Inference benchmarks: the pointer-tree walk versus the compiled flat tree
// versus the sharded batch path, on the Function-2 benchmark tree. Run:
//
//	go test -bench=BenchmarkPredict -benchmem
//
// make bench-infer regenerates BENCH_infer.json, the machine-readable
// baseline for these numbers, via cmd/cmpbench -exp infer.
package cmpdt_test

import (
	"fmt"
	"testing"

	"cmpdt/internal/core"
	"cmpdt/internal/dataset"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
	"cmpdt/internal/tree"
)

// benchRowPool is the number of records the single-record benchmarks cycle
// through: a power of two (so the wrap is a mask, not a divide) small enough
// to stay cache-resident, isolating the tree walk itself rather than DRAM
// latency on the records.
const benchRowPool = 4096

// inferFixture trains the Function-2 benchmark tree once per benchmark and
// returns it with its compiled form and the table it was trained on.
func inferFixture(b *testing.B) (*tree.Tree, *tree.Compiled, *dataset.Table) {
	b.Helper()
	tbl := synth.Generate(synth.F2, benchN, 1)
	res, err := core.Build(storage.NewMem(tbl), core.Default(core.CMPB))
	if err != nil {
		b.Fatal(err)
	}
	return res.Tree, tree.Compile(res.Tree), tbl
}

// benchRows returns row views over the first benchRowPool records.
func benchRows(tbl *dataset.Table) [][]float64 {
	rows := make([][]float64, benchRowPool)
	for i := range rows {
		rows[i] = tbl.Row(i)
	}
	return rows
}

// BenchmarkPredictPointer is the baseline: one record per op through the
// pointer-linked node graph.
func BenchmarkPredictPointer(b *testing.B) {
	t, _, tbl := inferFixture(b)
	rows := benchRows(tbl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		predictSink += t.Predict(rows[i&(benchRowPool-1)])
	}
}

// BenchmarkPredictFlat walks the compiled struct-of-arrays layout instead:
// one record per op, zero allocs.
func BenchmarkPredictFlat(b *testing.B) {
	_, c, tbl := inferFixture(b)
	rows := benchRows(tbl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		predictSink += c.Predict(rows[i&(benchRowPool-1)])
	}
}

// BenchmarkPredictBatch classifies the whole benchmark table per op through
// the sharded batch path, reporting ns/record across worker counts.
func BenchmarkPredictBatch(b *testing.B) {
	_, c, tbl := inferFixture(b)
	n := tbl.NumRecords()
	dst := make([]int, n)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.PredictTable(dst, tbl, workers)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/record")
		})
	}
}

// predictSink defeats dead-code elimination of the prediction loops.
var predictSink int
