package cmpdt

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"cmpdt/internal/forest"
	"cmpdt/internal/storage"
	"cmpdt/internal/tree"
)

// Predictor is the serving interface shared by every trained classification
// model — a single Tree or a bagged Forest. Code that scores records can
// accept a Predictor and stay agnostic to which model file it was handed;
// LoadPredictor picks the right implementation from the file itself.
type Predictor interface {
	// ModelSchema returns the schema the model was trained with.
	ModelSchema() Schema
	// Predict classifies one record and returns its class index.
	Predict(vals []float64) int
	// PredictClass classifies one record and returns its class name.
	PredictClass(vals []float64) string
	// PredictBatchWorkers classifies records[i] into dst[i] for every i,
	// sharded over the given number of goroutines (<= 0 selects
	// GOMAXPROCS), and returns dst (grown if too short). Predictions are
	// identical for every worker count.
	PredictBatchWorkers(dst []int, records [][]float64, workers int) []int
}

var (
	_ Predictor = (*Tree)(nil)
	_ Predictor = (*Forest)(nil)
)

// ForestConfig configures TrainForest.
type ForestConfig struct {
	// Trees is the ensemble size (default 16).
	Trees int
	// FeatureFrac is the fraction of attributes each tree may split on,
	// drawn per tree from a seeded permutation. Zero means 1.0 (every
	// tree sees every attribute); values must lie in (0, 1].
	FeatureFrac float64
	// NoBootstrap trains every tree on the full training set instead of a
	// bootstrap sample; out-of-bag estimation is then unavailable.
	NoBootstrap bool
	// Parallel bounds how many trees build concurrently (<= 0 selects
	// GOMAXPROCS). Concurrency never changes the trained forest.
	Parallel int
	// Seed drives the per-tree bootstrap masks and feature subsets.
	// Zero falls back to Tree.Seed (and then to the library default).
	Seed int64
	// Target, when non-empty, names the numeric attribute to predict: the
	// forest then grows regression trees (scored with PredictValue)
	// instead of classifiers.
	Target string
	// Tree is the per-tree training configuration. Its Seed is offset by
	// the tree index so members differ; its CacheBytes sizes the shared
	// store's page cache once for the whole build (disk-resident training
	// only); its Observer is ignored — use ForestConfig.Observer.
	Tree Config
	// Observer, when non-nil, collects the merged per-tree observability
	// report (phase timings summed across members, I/O totalled).
	Observer *Observer
}

func (c ForestConfig) internal() forest.Config {
	fc := forest.Config{
		Trees:       c.Trees,
		FeatureFrac: c.FeatureFrac,
		NoBootstrap: c.NoBootstrap,
		Parallel:    c.Parallel,
		Seed:        c.Seed,
		Target:      c.Target,
		Tree:        c.Tree.internal(),
		CollectObs:  c.Observer != nil,
	}
	if fc.Seed == 0 {
		fc.Seed = fc.Tree.Seed
	}
	fc.CacheBytes = fc.Tree.CacheBytes
	fc.Tree.CacheBytes = 0
	return fc
}

// Forest is a trained bagged ensemble of CMP trees. All prediction methods
// are safe for concurrent use; batch methods walk a compiled flat layout
// built once on first use.
type Forest struct {
	f *forest.Forest

	compileOnce sync.Once
	compiled    *tree.CompiledForest
}

func (f *Forest) flat() *tree.CompiledForest {
	f.compileOnce.Do(func() { f.compiled = f.f.Compile() })
	return f.compiled
}

// Predict majority-votes the ensemble over one record and returns the
// winning class index (ties break to the lowest index).
func (f *Forest) Predict(vals []float64) int { return f.flat().Predict(vals) }

// PredictClass is Predict returning the class name.
func (f *Forest) PredictClass(vals []float64) string {
	return f.f.Schema.Classes[f.Predict(vals)]
}

// PredictProb fills probs with the ensemble's averaged per-class leaf
// frequencies and returns the arg-max class index. probs must have one slot
// per class.
func (f *Forest) PredictProb(vals []float64, probs []float64) int {
	return f.flat().PredictProb(vals, probs)
}

// PredictValue averages the member regression trees' predictions. Only
// meaningful for a forest trained with ForestConfig.Target set.
func (f *Forest) PredictValue(vals []float64) float64 {
	return f.flat().PredictValue(vals)
}

// PredictBatch classifies records[i] into dst[i] for every i and returns
// dst, allocating only when dst is too short.
func (f *Forest) PredictBatch(dst []int, records [][]float64) []int {
	return f.PredictBatchWorkers(dst, records, 1)
}

// PredictBatchWorkers is PredictBatch sharded over the given number of
// goroutines (<= 0 selects GOMAXPROCS); shards split across records, never
// across member trees, so predictions are identical for every worker count.
func (f *Forest) PredictBatchWorkers(dst []int, records [][]float64, workers int) []int {
	if len(dst) < len(records) {
		dst = make([]int, len(records))
	}
	f.flat().PredictBatchWorkers(dst, records, workers)
	return dst
}

// PredictValueBatchWorkers is the regression analogue of
// PredictBatchWorkers.
func (f *Forest) PredictValueBatchWorkers(dst []float64, records [][]float64, workers int) []float64 {
	if len(dst) < len(records) {
		dst = make([]float64, len(records))
	}
	f.flat().PredictValueBatchWorkers(dst, records, workers)
	return dst
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return f.f.NumTrees() }

// TotalNodes sums the member trees' node counts.
func (f *Forest) TotalNodes() int { return f.f.TotalNodes() }

// Regression reports whether the forest predicts a numeric target.
func (f *Forest) Regression() bool { return f.f.Regression() }

// OOBError is the out-of-bag generalization estimate recorded at training
// time: misclassification rate for classification, mean squared error for
// regression. Valid only when OOBCount is positive (bootstrap enabled).
func (f *Forest) OOBError() float64 { return f.f.OOBError }

// OOBCount is the number of training records that received at least one
// out-of-bag vote.
func (f *Forest) OOBCount() int { return f.f.OOBCount }

// ModelSchema returns the schema the forest was trained with.
func (f *Forest) ModelSchema() Schema { return externalSchema(f.f.Schema) }

// WriteModel serializes the forest as a self-contained JSON model readable
// by ReadForest, LoadPredictor and cmd/cmpclassify.
func (f *Forest) WriteModel(w io.Writer) error { return f.f.WriteJSON(w) }

// SaveModel stores the model at path.
func (f *Forest) SaveModel(path string) error {
	fl, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.f.WriteJSON(fl); err != nil {
		fl.Close()
		return err
	}
	return fl.Close()
}

// TrainForest grows a bagged forest over ds: each member trains on a seeded
// bootstrap sample (taken as a record mask over the shared dataset, never a
// copy) with its own feature subset. A fixed seed yields a bit-identical
// forest at every worker count and tree-build concurrency.
func TrainForest(ds *Dataset, cfg ForestConfig) (*Forest, error) {
	return TrainForestContext(context.Background(), ds, cfg)
}

// TrainForestContext is TrainForest under a context: cancelling ctx aborts
// the member builds within a bounded slice of one scan round.
func TrainForestContext(ctx context.Context, ds *Dataset, cfg ForestConfig) (*Forest, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("cmpdt: empty dataset")
	}
	return trainForestSource(ctx, storage.NewMem(ds.tbl), cfg)
}

// TrainForestFile is TrainForest over a disk-resident dataset previously
// written with Dataset.SaveFile (or the cmpgen tool). Every member tree
// scans the same store through its own bootstrap mask; Tree.CacheBytes
// sizes a shared page cache so repeated scans re-read resident pages from
// memory.
func TrainForestFile(path string, cfg ForestConfig) (*Forest, error) {
	return TrainForestFileContext(context.Background(), path, cfg)
}

// TrainForestFileContext is TrainForestFile under a context.
func TrainForestFileContext(ctx context.Context, path string, cfg ForestConfig) (*Forest, error) {
	f, err := storage.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return trainForestSource(ctx, f, cfg)
}

func trainForestSource(ctx context.Context, src storage.RangeSource, cfg ForestConfig) (*Forest, error) {
	res, err := forest.TrainContext(ctx, src, cfg.internal())
	if err != nil {
		return nil, err
	}
	if cfg.Observer != nil {
		rep := res.Report
		rep.Build.Records = src.NumRecords()
		rep.Build.Seed = cfg.internal().Seed
		rep.Build.WallNs = res.Wall.Nanoseconds()
		cfg.Observer.rep = rep
	}
	return &Forest{f: res.Forest}, nil
}

// ReadForest deserializes a forest model written by Forest.WriteModel. As
// with ReadModel, read failures come back unwrapped while structural
// failures match ErrBadModel.
func ReadForest(r io.Reader) (*Forest, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("cmpdt: reading model: %w", err)
	}
	return readForestBytes(data)
}

// readForestBytes decodes a forest model from bytes already read.
func readForestBytes(data []byte) (*Forest, error) {
	inner, err := forest.ReadJSON(bytes.NewReader(data))
	if err != nil {
		return nil, badModel(err)
	}
	return &Forest{f: inner}, nil
}

// LoadForest reads a forest model from a file.
func LoadForest(path string) (*Forest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadForest(f)
}

// ReadPredictor deserializes whichever classification model r holds — a
// single tree (WriteModel/SaveModel) or a forest (Forest.WriteModel) — by
// sniffing the JSON envelope's format field. Regression forests are
// rejected: they have no classification surface, so load them with
// ReadForest and score via PredictValue.
//
// Errors are typed for serving layers: failures reading r (transient I/O)
// come back unwrapped, while every structural rejection — empty input,
// truncated or non-JSON bytes, a wrong format magic, validation failures,
// a regression forest — matches ErrBadModel via errors.Is, so a reloader
// can tell "retry later" from "this file will never load".
func ReadPredictor(r io.Reader) (Predictor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("cmpdt: reading model: %w", err)
	}
	if len(data) == 0 {
		return nil, badModel(errors.New("empty input"))
	}
	var env struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, badModel(fmt.Errorf("not a model file: %w", err))
	}
	if env.Format == "cmpdt-forest" {
		f, err := readForestBytes(data)
		if err != nil {
			return nil, err
		}
		if f.Regression() {
			return nil, badModel(errors.New("regression forest has no classification surface; use LoadForest and PredictValue"))
		}
		return f, nil
	}
	return readModelBytes(data)
}

// LoadPredictor reads a tree or forest model from a file (see
// ReadPredictor).
func LoadPredictor(path string) (Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPredictor(f)
}
