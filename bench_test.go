// Benchmarks regenerating every table and figure of the paper's evaluation
// section, plus ablations of the design choices DESIGN.md calls out. Run:
//
//	go test -bench=. -benchmem
//
// Sizes are laptop-scale; the shapes (who wins, by what factor) are what is
// being reproduced — cmd/cmpbench -full runs the paper's record counts.
package cmpdt_test

import (
	"fmt"
	"testing"

	"cmpdt/internal/core"
	"cmpdt/internal/dataset"
	"cmpdt/internal/eval"
	"cmpdt/internal/experiments"
	"cmpdt/internal/storage"
	"cmpdt/internal/synth"
)

// benchN is the record count used by the figure benchmarks.
const benchN = 50_000

func benchOpts() experiments.Opts {
	o := experiments.Defaults()
	o.Sizes = []int{benchN}
	return o
}

func reportRows(b *testing.B, rows []experiments.Row) {
	b.Helper()
	for _, r := range rows {
		b.ReportMetric(r.SimSeconds, r.Algorithm+"-sim-s")
	}
}

// BenchmarkTable1SplitFidelity regenerates Table 1: the first split chosen
// by CMP-S versus the exact algorithm across six datasets and two interval
// counts each.
func BenchmarkTable1SplitFidelity(b *testing.B) {
	o := benchOpts()
	o.N = benchN
	for i := 0; i < b.N; i++ {
		rows, err := o.Table1()
		if err != nil {
			b.Fatal(err)
		}
		matches := 0
		for _, r := range rows {
			if r.AttrMatch {
				matches++
			}
		}
		b.ReportMetric(float64(matches), "attr-matches")
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

// BenchmarkFig14ScalabilityF2 regenerates Figure 14: CMP-S/CMP-B/CMP
// running time on Function 2.
func BenchmarkFig14ScalabilityF2(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := o.Scalability(synth.F2)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkFig15ScalabilityF7 regenerates Figure 15 on Function 7, whose
// larger tree makes construction slower.
func BenchmarkFig15ScalabilityF7(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := o.Scalability(synth.F7)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkFig16ComparisonF2 regenerates Figure 16: CMP against SPRINT,
// RainForest and CLOUDS on Function 2.
func BenchmarkFig16ComparisonF2(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := o.Comparison(synth.F2)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkFig17ComparisonF7 regenerates Figure 17 on Function 7.
func BenchmarkFig17ComparisonF7(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := o.Comparison(synth.F7)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkFig18FunctionF regenerates Figure 18: the linearly-correlated
// workload where CMP's multivariate split yields a two-level tree.
func BenchmarkFig18FunctionF(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := o.FunctionF()
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
		for _, r := range rows {
			if r.Algorithm == eval.AlgoCMP {
				b.ReportMetric(float64(r.Depth), "cmp-depth")
				b.ReportMetric(float64(r.Oblique), "cmp-oblique")
			}
		}
	}
}

// BenchmarkFig19Memory regenerates Figure 19: peak memory across the
// algorithms.
func BenchmarkFig19Memory(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := o.Memory()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MemoryMB, r.Algorithm+"-MB")
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationMaxAlive varies the alive-interval budget N: more alive
// intervals buffer more records but track the exact split more closely.
func BenchmarkAblationMaxAlive(b *testing.B) {
	for _, alive := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("N=%d", alive), func(b *testing.B) {
			tbl := synth.Generate(synth.F2, benchN, 1)
			for i := 0; i < b.N; i++ {
				cfg := core.Default(core.CMPS)
				cfg.MaxAlive = alive
				res, err := core.Build(storage.NewMem(tbl), cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.BufferedRecords), "buffered")
				b.ReportMetric(float64(res.Stats.Scans), "scans")
			}
		})
	}
}

// BenchmarkAblationIntervals varies the discretization granularity q, the
// knob Table 1 studies.
func BenchmarkAblationIntervals(b *testing.B) {
	for _, q := range []int{10, 25, 50, 100, 120} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			tbl := synth.Generate(synth.F2, benchN, 1)
			for i := 0; i < b.N; i++ {
				cfg := core.Default(core.CMPS)
				cfg.Intervals = q
				res, err := core.Build(storage.NewMem(tbl), cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.Scans), "scans")
				b.ReportMetric(float64(res.Tree.Leaves()), "leaves")
			}
		})
	}
}

// BenchmarkAblationPrediction isolates CMP-B's split prediction: the same
// workload under CMP-S (no prediction) and CMP-B, reporting scans saved and
// the prediction hit rate.
func BenchmarkAblationPrediction(b *testing.B) {
	for _, algo := range []core.Algorithm{core.CMPS, core.CMPB} {
		b.Run(algo.String(), func(b *testing.B) {
			tbl := synth.Generate(synth.F7, benchN, 1)
			for i := 0; i < b.N; i++ {
				res, err := core.Build(storage.NewMem(tbl), core.Default(algo))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.Scans), "scans")
				if res.Stats.PredictionTotal > 0 {
					b.ReportMetric(float64(res.Stats.PredictionHits)/float64(res.Stats.PredictionTotal), "hit-rate")
				}
				b.ReportMetric(float64(res.Stats.DoubleSplits), "double-splits")
			}
		})
	}
}

// BenchmarkAblationObliqueAllPairs compares full CMP with the paper's N-1
// matrices against the all-pairs extension on the linearly-correlated
// workload.
func BenchmarkAblationObliqueAllPairs(b *testing.B) {
	for _, allPairs := range []bool{false, true} {
		b.Run(fmt.Sprintf("allPairs=%v", allPairs), func(b *testing.B) {
			tbl := synth.Generate(synth.FPaper, benchN, 7)
			for i := 0; i < b.N; i++ {
				cfg := core.Default(core.CMPFull)
				cfg.ObliqueAllPairs = allPairs
				res, err := core.Build(storage.NewMem(tbl), cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.ObliqueSplits), "oblique")
				b.ReportMetric(float64(res.Tree.Leaves()), "leaves")
				b.ReportMetric(float64(res.Stats.PeakMemoryBytes)/(1<<20), "mem-MB")
			}
		})
	}
}

// BenchmarkAblationPruning measures the PUBLIC(1) pruning pass's effect on
// tree size and construction work.
func BenchmarkAblationPruning(b *testing.B) {
	for _, prune := range []bool{true, false} {
		b.Run(fmt.Sprintf("prune=%v", prune), func(b *testing.B) {
			noisy := newNoisy(b)
			for i := 0; i < b.N; i++ {
				cfg := core.Default(core.CMPS)
				cfg.Prune = prune
				res, err := core.Build(storage.NewMem(noisy), cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Tree.Leaves()), "leaves")
				b.ReportMetric(float64(res.Stats.Scans), "scans")
			}
		})
	}
}

func newNoisy(b *testing.B) *dataset.Table {
	b.Helper()
	tbl := dataset.MustNew(synth.Schema())
	if err := synth.GenerateTo(tbl, synth.F2, benchN, 9, synth.Options{Noise: 0.05}); err != nil {
		b.Fatal(err)
	}
	return tbl
}

// BenchmarkCorePrimitives covers the hot inner loops.
func BenchmarkCorePrimitives(b *testing.B) {
	b.Run("TrainCMPB50k", func(b *testing.B) {
		tbl := synth.Generate(synth.F2, benchN, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(storage.NewMem(tbl), core.Default(core.CMPB)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Predict", func(b *testing.B) {
		tbl := synth.Generate(synth.F2, benchN, 1)
		res, err := core.Build(storage.NewMem(tbl), core.Default(core.CMPB))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res.Tree.Predict(tbl.Row(i % tbl.NumRecords()))
		}
	})
}
