package cmpdt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmpdt/internal/storage"
)

// errTestModel trains a tiny tree and returns its serialized model bytes.
func errTestModel(t *testing.T) []byte {
	t.Helper()
	ds := smallDataset(t)
	tr, err := Train(ds, Config{Algorithm: CMPS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// smallDataset builds a two-attribute dataset big enough to split.
func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewDataset(Schema{
		Attrs:   []Attr{{Name: "x"}, {Name: "y"}},
		Classes: []string{"a", "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		label := 0
		if i%2 == 1 {
			label = 1
		}
		if err := ds.Append([]float64{float64(i % 50), float64((i * 7) % 31)}, label); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

// TestReadPredictorBadModelTyped pins the error contract cmpserve's
// reloader depends on: every structural rejection matches ErrBadModel,
// while transient read failures do not.
func TestReadPredictorBadModelTyped(t *testing.T) {
	good := errTestModel(t)

	corrupt := func(mutate func([]byte) []byte) []byte {
		return mutate(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"garbage", []byte("\x00\x01\x02 not json at all")},
		{"truncated", corrupt(func(b []byte) []byte { return b[:len(b)/2] })},
		{"wrong-magic", corrupt(func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"cmpdt-tree"`), []byte(`"mystery-fmt"`), 1)
		})},
		{"bad-version", corrupt(func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"version": 1`), []byte(`"version": 99`), 1)
		})},
		{"valid-json-non-model", []byte(`{"hello": "world"}`)},
		{"corrupt-node", corrupt(func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"class": 0`), []byte(`"class": -7`), 1)
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadPredictor(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt input loaded without error")
			}
			if !errors.Is(err, ErrBadModel) {
				t.Fatalf("error %v does not match ErrBadModel", err)
			}
			if storage.IsTransient(err) {
				t.Fatalf("structural error %v misclassified as transient", err)
			}
		})
	}
}

// TestReadPredictorTransientNotBadModel streams the model bytes through a
// storage.FaultInjector: the injected transient read failure must surface
// as a retryable error, not as ErrBadModel.
func TestReadPredictorTransientNotBadModel(t *testing.T) {
	// Pad the model with trailing whitespace (legal JSON surroundings) so
	// the read spans several calls — the injector faults every 2nd call,
	// never the 1st.
	good := append(errTestModel(t), bytes.Repeat([]byte(" "), 64<<10)...)
	fi := storage.NewFaultInjector(1, 2) // fault every 2nd read call
	r := fi.WrapReader(bytes.NewReader(good), int64(len(good)))
	_, err := ReadPredictor(r)
	if err == nil {
		t.Fatal("expected the injected fault to surface")
	}
	if errors.Is(err, ErrBadModel) {
		t.Fatalf("transient read failure %v misclassified as ErrBadModel", err)
	}
	if !storage.IsTransient(err) {
		t.Fatalf("injected fault %v not classified transient", err)
	}
	if fi.Injected() == 0 {
		t.Fatal("fault injector never fired; the test read too little")
	}
}

// TestLoadPredictorMissingFileNotBadModel: a missing path is an I/O
// condition, not a structural one.
func TestLoadPredictorMissingFileNotBadModel(t *testing.T) {
	_, err := LoadPredictor(filepath.Join(t.TempDir(), "nope.json"))
	if err == nil {
		t.Fatal("expected an error for a missing file")
	}
	if errors.Is(err, ErrBadModel) {
		t.Fatalf("missing file %v misclassified as ErrBadModel", err)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want os.ErrNotExist in %v", err)
	}
}

// TestReadPredictorRegressionForestBadModel: regression forests have no
// classification surface, and that rejection is permanent.
func TestReadPredictorRegressionForestBadModel(t *testing.T) {
	ds := smallDataset(t)
	f, err := TrainForest(ds, ForestConfig{
		Trees:  2,
		Target: "y",
		Tree:   Config{Algorithm: CMPS, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	_, err = ReadPredictor(&buf)
	if err == nil || !errors.Is(err, ErrBadModel) {
		t.Fatalf("regression forest load = %v, want ErrBadModel", err)
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("error %v should name the regression rejection", err)
	}
}
