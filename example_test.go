package cmpdt_test

import (
	"fmt"
	"log"
	"math/rand"

	"cmpdt"
)

// creditSchema is the running example: two numeric attributes and one
// categorical, two classes.
func creditSchema() cmpdt.Schema {
	return cmpdt.Schema{
		Attrs: []cmpdt.Attr{
			{Name: "age"},
			{Name: "income"},
			{Name: "status", Values: []string{"new", "returning"}},
		},
		Classes: []string{"deny", "approve"},
	}
}

// creditData generates a deterministic training set: approve iff age >= 30
// and income >= 40000.
func creditData(n int) *cmpdt.Dataset {
	ds, err := cmpdt.NewDataset(creditSchema())
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		age := 18 + rng.Float64()*50
		income := 10_000 + rng.Float64()*90_000
		status := float64(rng.Intn(2))
		label := 0
		if age >= 30 && income >= 40_000 {
			label = 1
		}
		if err := ds.Append([]float64{age, income, status}, label); err != nil {
			log.Fatal(err)
		}
	}
	return ds
}

func ExampleTrain() {
	ds := creditData(10_000)
	tree, err := cmpdt.Train(ds, cmpdt.Config{Algorithm: cmpdt.CMPB})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree.PredictClass([]float64{45, 80_000, 1}))
	fmt.Println(tree.PredictClass([]float64{22, 80_000, 1}))
	fmt.Println(tree.PredictClass([]float64{45, 20_000, 0}))
	// Output:
	// approve
	// deny
	// deny
}

func ExampleTree_Explain() {
	ds := creditData(10_000)
	tree, err := cmpdt.Train(ds, cmpdt.Config{Algorithm: cmpdt.CMPS, MaxDepth: 2})
	if err != nil {
		log.Fatal(err)
	}
	steps := tree.Explain([]float64{22, 80_000, 1})
	// The final step names the predicted class.
	fmt.Println(steps[len(steps)-1])
	// Output:
	// => deny
}

func ExampleTree_Evaluate() {
	ds := creditData(20_000)
	train, test := ds.Split(0.8, 1)
	tree, err := cmpdt.Train(train, cmpdt.Config{Algorithm: cmpdt.CMPS})
	if err != nil {
		log.Fatal(err)
	}
	rep := tree.Evaluate(test)
	fmt.Printf("accuracy above 0.95: %v\n", rep.Accuracy > 0.95)
	fmt.Printf("classes reported: %d\n", len(rep.PerClass))
	// Output:
	// accuracy above 0.95: true
	// classes reported: 2
}

func ExampleCrossValidate() {
	ds := creditData(5_000)
	_, mean, err := cmpdt.CrossValidate(ds, cmpdt.Config{Algorithm: cmpdt.CMPS}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean accuracy above 0.95: %v\n", mean > 0.95)
	// Output:
	// mean accuracy above 0.95: true
}
