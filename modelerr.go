package cmpdt

import (
	"errors"
)

// ErrBadModel tags a model file rejected as structurally invalid: empty or
// truncated bytes, JSON that does not parse, a wrong format magic, an
// unsupported version, or a schema/node graph that fails validation.
//
// The distinction matters to serving layers: a load that fails with an
// error matching ErrBadModel (errors.Is) will never succeed on retry — the
// file itself is damaged — so the right response is to fail closed and
// keep the previously loaded model. A load failing WITHOUT ErrBadModel
// (a transient read fault, a missing file) may succeed if reissued.
var ErrBadModel = errors.New("invalid model file")

// modelFileError wraps a structural model-decoding failure so callers can
// match either the ErrBadModel class or the specific underlying cause.
type modelFileError struct {
	err error
}

func (e *modelFileError) Error() string {
	return "cmpdt: invalid model file: " + e.err.Error()
}

// Unwrap exposes both the class sentinel and the concrete cause to
// errors.Is/As.
func (e *modelFileError) Unwrap() []error { return []error{ErrBadModel, e.err} }

// badModel tags err as a structural model failure; nil stays nil.
func badModel(err error) error {
	if err == nil {
		return nil
	}
	return &modelFileError{err: err}
}
