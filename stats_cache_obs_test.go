package cmpdt

import (
	"bytes"
	"testing"
)

// TestStatsCacheReportConsistency pins the public contract between the
// statistics cache and the observability report: the report's stats block
// mirrors Stats exactly, and its scans_saved equals the cached-vs-uncached
// scan delta — in Stats.Scans and in the report's own build scan counter.
func TestStatsCacheReportConsistency(t *testing.T) {
	ds := loanDataset(t, 25_000)
	base := Config{
		Algorithm:           CMPB,
		Quantize:            true,
		Workers:             1,
		InMemoryNodeRecords: -1,
	}

	offObs := NewObserver()
	offCfg := base
	offCfg.Observer = offObs
	offTree, offStats, err := TrainStats(ds, offCfg)
	if err != nil {
		t.Fatal(err)
	}
	offRep := offObs.Report()
	if offRep.Stats.Enabled || offRep.Stats.ScansSaved != 0 {
		t.Fatalf("uncached report claims cache activity: %+v", offRep.Stats)
	}

	onObs := NewObserver()
	onCfg := base
	onCfg.StatsCacheBytes = 64 << 20
	onCfg.Observer = onObs
	onTree, onStats, err := TrainStats(ds, onCfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := onObs.Report()

	var offBuf, onBuf bytes.Buffer
	if err := offTree.WriteModel(&offBuf); err != nil {
		t.Fatal(err)
	}
	if err := onTree.WriteModel(&onBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offBuf.Bytes(), onBuf.Bytes()) {
		t.Fatal("cached build's model differs from the uncached build's")
	}

	if !rep.Stats.Enabled {
		t.Fatal("report stats block not marked enabled")
	}
	if rep.Stats.BudgetBytes != onCfg.StatsCacheBytes {
		t.Fatalf("report budget = %d, want %d", rep.Stats.BudgetBytes, onCfg.StatsCacheBytes)
	}
	// The report's stats block is a verbatim copy of the build stats.
	if rep.Stats.ScansSaved != onStats.ScansSaved {
		t.Fatalf("report scans_saved = %d, Stats.ScansSaved = %d",
			rep.Stats.ScansSaved, onStats.ScansSaved)
	}
	// And scans_saved is exactly the scan delta, in Stats and in the
	// report's build summary.
	if onStats.Scans != offStats.Scans-onStats.ScansSaved {
		t.Fatalf("Scans = %d, want uncached %d - saved %d",
			onStats.Scans, offStats.Scans, onStats.ScansSaved)
	}
	if rep.Build.Scans != offRep.Build.Scans-rep.Stats.ScansSaved {
		t.Fatalf("report build.scans = %d, want uncached %d - scans_saved %d",
			rep.Build.Scans, offRep.Build.Scans, rep.Stats.ScansSaved)
	}
	if onStats.ScansSaved == 0 {
		t.Fatal("deep build saved no scans; the regression this test pins is gone")
	}
}
